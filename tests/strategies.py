"""Hypothesis strategies for random-but-valid SQL ASTs.

The generators build ASTs bottom-up in the exact node vocabulary the
parser emits, so every generated tree should round-trip through
``render_sql`` / ``parse_sql`` unchanged — the core property the parser
substrate is tested on.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.sqlparser.astnodes import Node

_IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    # exclude words the lexer treats as keywords
    lambda s: s.upper()
    not in {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "OFFSET", "TOP", "DISTINCT", "ALL", "AS", "AND", "OR", "NOT", "IN",
        "IS", "NULL", "LIKE", "BETWEEN", "CASE", "WHEN", "THEN", "ELSE",
        "END", "CAST", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER",
        "CROSS", "ON", "UNION", "EXCEPT", "INTERSECT", "ASC", "DESC",
        "EXISTS", "TRUE", "FALSE",
    }
)

_NUM = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6).map(
        lambda v: Node("NumExpr", {"value": v})
    ),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    .map(lambda v: round(v, 3))
    .filter(lambda v: v == v and abs(v) < 1e6)
    .map(lambda v: Node("NumExpr", {"value": v})),
)

_STR = st.from_regex(r"[a-zA-Z0-9 _\-]{0,12}", fullmatch=True).map(
    lambda s: Node("StrExpr", {"value": s})
)

_COL = _IDENT.map(lambda name: Node("ColExpr", {"name": name}))

_LITERAL = st.one_of(_NUM, _STR, _COL)

_COMPARISON_OP = st.sampled_from(["=", "<>", "<", ">", "<=", ">="])
_ARITH_OP = st.sampled_from(["+", "-", "*", "/"])


def _bi(op_strategy):
    def build(children_strategy):
        return st.tuples(op_strategy, children_strategy, children_strategy).map(
            lambda t: Node("BiExpr", {"op": t[0]}, [t[1], t[2]])
        )

    return build


def scalar_exprs(max_depth: int = 3):
    """Arithmetic/comparison expression trees over literals and columns."""
    return st.recursive(
        _LITERAL,
        lambda inner: st.one_of(
            _bi(_ARITH_OP)(inner),
            st.tuples(_IDENT, st.lists(inner, min_size=1, max_size=3)).map(
                lambda t: Node(
                    "FuncExpr", {}, [Node("FuncName", {"name": t[0]})] + t[1]
                )
            ),
        ),
        max_leaves=6,
    )


def predicates():
    """WHERE-clause conjunct strategies."""
    simple = st.tuples(_COMPARISON_OP, _COL, st.one_of(_NUM, _STR)).map(
        lambda t: Node("BiExpr", {"op": t[0]}, [t[1], t[2]])
    )
    between = st.tuples(
        _COL,
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=101, max_value=1000),
    ).map(
        lambda t: Node(
            "BetweenExpr",
            {},
            [t[0], Node("NumExpr", {"value": t[1]}), Node("NumExpr", {"value": t[2]})],
        )
    )
    return st.one_of(simple, between)


# ----------------------------------------------------------------------
# AST paths (interval-index property suite)
# ----------------------------------------------------------------------
#
# Random-but-realistic path sets for the interval-encoding harness: AST
# paths are short tuples of small child indices, and real diff tables mix
# ancestors with their descendants constantly (every ancestor diff sits
# on a prefix of its leaf diffs' paths).  ``ast_paths`` biases towards
# that by extending previously drawn paths, so prefix chains — the case
# interval containment must get right — are common rather than
# vanishingly rare.

def ast_paths(max_depth: int = 5, max_branch: int = 4):
    """A single random AST path as a step tuple."""
    return st.lists(
        st.integers(min_value=0, max_value=max_branch),
        min_size=0,
        max_size=max_depth,
    ).map(tuple)


@st.composite
def path_sets(draw, min_size: int = 1, max_size: int = 12) -> list[tuple]:
    """A set of distinct paths rich in ancestor/descendant chains."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    paths: list[tuple] = []
    seen: set[tuple] = set()
    # bounded loop that *skips* duplicates rather than redrawing — an
    # unbounded retry loop stalls Hypothesis's entropy budget
    for _ in range(n):
        if paths and draw(st.booleans()):
            # extend an existing path so prefix chains actually occur
            base = paths[draw(st.integers(0, len(paths) - 1))]
            candidate = base + draw(ast_paths(max_depth=2))
        else:
            candidate = draw(ast_paths())
        if candidate not in seen:
            seen.add(candidate)
            paths.append(candidate)
    if not paths:
        paths.append(())
    return paths


@st.composite
def path_batches(draw, max_batches: int = 4) -> list[list[tuple]]:
    """An incremental arrival schedule: successive batches of paths
    (batches may re-touch already seen paths — the steady-state case)."""
    universe = draw(path_sets(min_size=1, max_size=10))
    n_batches = draw(st.integers(min_value=1, max_value=max_batches))
    batches = []
    for _ in range(n_batches):
        batch = draw(
            st.lists(st.sampled_from(universe), min_size=1, max_size=6)
        )
        batches.append(batch)
    return batches


# ----------------------------------------------------------------------
# session workloads (service-layer parity suite)
# ----------------------------------------------------------------------
#
# Real session logs are not arbitrary ASTs: they are *template traffic* —
# the same handful of query shapes re-issued with different literals and
# columns, which is exactly the structure interface mining exploits.
# ``session_workloads`` generates that: per client, a random mix of
# parametrised templates instantiated with random values, then split into
# random contiguous batches (the arrival pattern).  The parity suite runs
# each workload through one-shot ``generate``, ``InterfaceSession.stream``,
# and a ``SessionPool`` and requires identical widget sets and closure
# answers.

_TABLE = st.sampled_from(["t", "orders", "runs", "ontime"])


@st.composite
def template_statements(draw, min_size: int = 4, max_size: int = 10) -> list[str]:
    """A single client's log: template traffic over one table."""
    table = draw(_TABLE)
    shapes = draw(
        st.lists(
            st.sampled_from(["filter", "project", "group"]),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    statements = []
    for _ in range(n):
        shape = draw(st.sampled_from(shapes))
        if shape == "filter":
            value = draw(st.integers(min_value=0, max_value=40))
            statements.append(f"SELECT a FROM {table} WHERE x = {value}")
        elif shape == "project":
            column = draw(st.sampled_from(["a", "b", "c"]))
            value = draw(st.integers(min_value=0, max_value=9))
            statements.append(
                f"SELECT {column}, d FROM {table} WHERE y = {value}"
            )
        else:
            agg = draw(st.sampled_from(["SUM", "AVG", "MIN"]))
            statements.append(
                f"SELECT g, {agg}(m) FROM {table} GROUP BY g"
            )
    return statements


@st.composite
def batch_splits(draw, statements: list[str]) -> list[list[str]]:
    """A random partition of a log into contiguous non-empty batches."""
    if len(statements) <= 1:
        return [list(statements)]
    cuts = draw(
        st.sets(
            st.integers(min_value=1, max_value=len(statements) - 1),
            max_size=len(statements) - 1,
        )
    )
    bounds = [0, *sorted(cuts), len(statements)]
    return [
        statements[start:stop]
        for start, stop in zip(bounds, bounds[1:])
        if stop > start
    ]


@st.composite
def session_workloads(draw, max_clients: int = 3):
    """A multi-client workload: ``{client_id: (statements, batches)}``.

    ``batches`` concatenates back to exactly ``statements`` — the
    invariant that makes one-shot/streamed/pooled runs comparable.
    """
    n_clients = draw(st.integers(min_value=1, max_value=max_clients))
    workload = {}
    for index in range(n_clients):
        statements = draw(template_statements())
        batches = draw(batch_splits(statements))
        workload[f"client-{index}"] = (statements, batches)
    return workload


@st.composite
def select_statements(draw) -> Node:
    """A random SELECT AST in canonical clause order."""
    n_proj = draw(st.integers(min_value=1, max_value=4))
    projections = [
        Node("ProjClause", {}, [draw(scalar_exprs())]) for _ in range(n_proj)
    ]
    clauses = [Node("Project", {}, projections)]

    table = draw(_IDENT)
    clauses.append(Node("From", {}, [Node("TableRef", {"name": table})]))

    if draw(st.booleans()):
        n_conj = draw(st.integers(min_value=1, max_value=3))
        conjuncts = [draw(predicates()) for _ in range(n_conj)]
        clauses.append(Node("Where", {}, [Node("AndExpr", {}, conjuncts)]))

    if draw(st.booleans()):
        n_group = draw(st.integers(min_value=1, max_value=2))
        groups = [Node("GroupClause", {}, [draw(_COL)]) for _ in range(n_group)]
        clauses.append(Node("GroupBy", {}, groups))

    if draw(st.booleans()):
        clauses.append(
            Node(
                "Top",
                {},
                [Node("NumExpr", {"value": draw(st.integers(1, 1000))})],
            )
        )
    return Node("SelectStmt", {}, clauses)
