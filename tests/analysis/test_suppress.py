"""Inline suppression directives and their failure modes."""

import textwrap

from repro.analysis import PARSE_ERROR_ID, LintConfig, lint_source
from repro.analysis.suppress import scan_suppressions

STORE_PATH = "src/repro/cache/store.py"


def lint(source: str, path: str = STORE_PATH):
    return lint_source(textwrap.dedent(source), path, LintConfig())


def test_trailing_directive_suppresses_its_line():
    findings, n_suppressed = lint(
        """
        def prune(path):
            path.unlink()  # repro-lint: disable=RL001
        """
    )
    assert findings == []
    assert n_suppressed == 1


def test_standalone_directive_covers_the_next_code_line():
    findings, n_suppressed = lint(
        """
        def prune(path):
            # single-file op, atomic rename makes the lock unnecessary
            # repro-lint: disable=RL001

            path.unlink()
        """
    )
    assert findings == []
    assert n_suppressed == 1


def test_directive_is_rule_specific():
    findings, n_suppressed = lint(
        """
        def prune(path):
            path.unlink()  # repro-lint: disable=RL002
        """
    )
    assert [f.rule_id for f in findings] == ["RL001"]
    assert n_suppressed == 0


def test_directive_accepts_multiple_ids():
    findings, n_suppressed = lint(
        """
        def prune(path):
            path.unlink()  # repro-lint: disable=RL002, RL001
        """
    )
    assert findings == []
    assert n_suppressed == 1


def test_malformed_directive_is_a_finding():
    findings, _ = lint(
        """
        def prune(path):
            path.unlink()  # repro-lint: disable=lock-stuff
        """
    )
    ids = [f.rule_id for f in findings]
    assert "RL001" in ids  # nothing got suppressed
    assert PARSE_ERROR_ID in ids  # and the typo itself is reported


def test_directives_inside_strings_are_ignored():
    findings, n_suppressed = lint(
        """
        def prune(path):
            note = "# repro-lint: disable=RL001"
            path.unlink()
        """
    )
    assert [f.rule_id for f in findings] == ["RL001"]
    assert n_suppressed == 0


def test_parse_errors_are_not_suppressible():
    findings, _ = lint(
        """
        def prune(path  # repro-lint: disable=RL000
        """
    )
    assert [f.rule_id for f in findings] == [PARSE_ERROR_ID]


def test_scan_reports_directive_lines():
    index = scan_suppressions(
        textwrap.dedent(
            """
            x = 1  # repro-lint: disable=RL001
            # repro-lint: disable=RL002,RL003
            y = 2
            """
        )
    )
    assert index.is_suppressed(2, "RL001")
    assert not index.is_suppressed(2, "RL002")
    assert index.is_suppressed(4, "RL002")
    assert index.is_suppressed(4, "RL003")
    assert index.malformed == []
