"""Engine, configuration, registry, and CLI behaviour — plus the
repo-level guarantee that the shipped tree lints clean."""

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    PARSE_ERROR_ID,
    LintConfig,
    all_rule_classes,
    get_rule_class,
    lint_paths,
)
from repro.analysis.cli import main, run_lint
from repro.analysis.config import load_config
from repro.analysis.report import render_json, render_rule_list, render_text
from repro.analysis.rules import Rule, register, resolve_rules

REPO_ROOT = Path(__file__).resolve().parents[2]

VIOLATION = textwrap.dedent(
    """
    def prune(path):
        path.unlink()
    """
)

CLEAN = "def prune(path):\n    return path\n"


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
def test_lint_paths_walks_directories(tmp_path):
    package = tmp_path / "repro" / "cache"
    package.mkdir(parents=True)
    (package / "store.py").write_text(VIOLATION)
    (package / "other.py").write_text(CLEAN)
    run = lint_paths([tmp_path], LintConfig())
    assert run.n_files == 2
    assert [f.rule_id for f in run.findings] == ["RL001"]
    assert not run.ok


def test_lint_paths_honours_excludes(tmp_path):
    package = tmp_path / "repro" / "cache"
    package.mkdir(parents=True)
    (package / "store.py").write_text(VIOLATION)
    run = lint_paths([tmp_path], LintConfig(exclude=("*/cache/*",)))
    assert run.n_files == 0
    assert run.ok


def test_lint_paths_rejects_missing_paths(tmp_path):
    with pytest.raises(FileNotFoundError):
        lint_paths([tmp_path / "nope"], LintConfig())


def test_syntax_error_becomes_parse_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    run = lint_paths([bad], LintConfig())
    assert [f.rule_id for f in run.findings] == [PARSE_ERROR_ID]


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def test_load_config_reads_pyproject_block(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        textwrap.dedent(
            """
            [tool.repro-lint]
            targets = ["lib"]
            store-modules = ["*lib/db.py"]
            """
        )
    )
    config = load_config(pyproject)
    assert config.targets == ("lib",)
    assert config.store_modules == ("*lib/db.py",)
    # untouched fields keep their defaults
    assert config.frozen_classes == LintConfig().frozen_classes


def test_unknown_config_key_fails_loudly():
    with pytest.raises(ValueError, match="unknown"):
        LintConfig().merged({"store-modulez": ["x"]})


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_has_the_six_shipped_rules():
    ids = [cls.id for cls in all_rule_classes()]
    assert ids == ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006"]
    assert get_rule_class("RL001").name == "lock-discipline"
    assert get_rule_class("RL006").name == "compiled-artifact-hygiene"


def test_register_rejects_malformed_ids():
    class BadId(Rule):
        id = "R1"
        name = "bad"
        description = "bad"

    with pytest.raises(ValueError, match="RLxxx"):
        register(BadId)


def test_register_rejects_id_collisions():
    class Usurper(Rule):
        id = "RL001"
        name = "usurper"
        description = "tries to reuse a stable id"

    with pytest.raises(ValueError, match="duplicate"):
        register(Usurper)


def test_resolve_rules_select_and_ignore():
    assert [r.id for r in resolve_rules(select=("RL003",))] == ["RL003"]
    assert [r.id for r in resolve_rules(ignore=("RL002", "RL004"))] == [
        "RL001",
        "RL003",
        "RL005",
        "RL006",
    ]
    with pytest.raises(KeyError):
        resolve_rules(select=("RL999",))


# ----------------------------------------------------------------------
# reporters and CLI
# ----------------------------------------------------------------------
def _write_violation(tmp_path):
    package = tmp_path / "repro" / "cache"
    package.mkdir(parents=True)
    target = package / "store.py"
    target.write_text(VIOLATION)
    return target


def test_text_report_lines_are_clickable(tmp_path):
    target = _write_violation(tmp_path)
    run = lint_paths([target], LintConfig())
    text = render_text(run)
    assert f"{target}:3:5: RL001" in text
    assert "1 finding in 1 file" in text


def test_rule_list_mentions_every_rule():
    listing = render_rule_list()
    for cls in all_rule_classes():
        assert cls.id in listing
        assert cls.name in listing


def test_cli_exit_codes(tmp_path):
    target = _write_violation(tmp_path)
    out, err = io.StringIO(), io.StringIO()
    assert run_lint([str(target)], stdout=out, stderr=err) == 1
    assert "RL001" in out.getvalue()

    clean = tmp_path / "clean.py"
    clean.write_text(CLEAN)
    assert run_lint([str(clean)], stdout=io.StringIO()) == 0

    assert run_lint([str(tmp_path / "nope.py")], stdout=out, stderr=err) == 2
    assert "no such file" in err.getvalue()


def test_cli_json_output(tmp_path):
    target = _write_violation(tmp_path)
    out = io.StringIO()
    assert run_lint([str(target)], json_output=True, stdout=out) == 1
    payload = json.loads(out.getvalue())
    assert payload["n_findings"] == 1
    assert payload["findings"][0]["rule"] == "RL001"
    assert payload == json.loads(render_json(lint_paths([target], LintConfig())))


def test_cli_select_and_unknown_rule(tmp_path):
    target = _write_violation(tmp_path)
    assert run_lint([str(target)], select="RL002", stdout=io.StringIO()) == 0
    err = io.StringIO()
    assert (
        run_lint([str(target)], select="RL999", stdout=io.StringIO(), stderr=err)
        == 2
    )
    assert "unknown rule id" in err.getvalue()


def test_module_main_list_rules():
    assert main(["--list-rules"]) == 0


def test_repro_cli_has_a_lint_subcommand(tmp_path, capsys):
    from repro.__main__ import main as repro_main

    target = _write_violation(tmp_path)
    assert repro_main(["lint", str(target)]) == 1
    assert "RL001" in capsys.readouterr().out


# ----------------------------------------------------------------------
# the repository itself
# ----------------------------------------------------------------------
def test_shipped_tree_lints_clean():
    """The acceptance gate: `repro lint src/repro` exits 0 on this tree.

    Every suppression in the tree is deliberate and counted, so a newly
    introduced violation (or a suppression that stopped matching) fails
    this test before it fails CI.
    """
    config = load_config(REPO_ROOT / "pyproject.toml")
    run = lint_paths([REPO_ROOT / "src" / "repro"], config)
    assert run.findings == []
    assert run.n_files > 50
    assert run.n_suppressed >= 1  # the lock-free save_graph in store.py
