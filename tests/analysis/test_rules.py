"""Per-rule fixture tests: every rule flags its seeded violation and
stays quiet on the compliant twin.

The fixtures are inline source strings (not files on disk), so the
repo-level lint run — which must be clean — never sees them.
"""

import textwrap

from repro.analysis import LintConfig, lint_source

STORE_PATH = "src/repro/cache/store.py"


def rule_ids(source: str, path: str = "src/repro/example.py", config=None):
    findings, _ = lint_source(textwrap.dedent(source), path, config or LintConfig())
    return [finding.rule_id for finding in findings]


# ----------------------------------------------------------------------
# RL001 — lock discipline
# ----------------------------------------------------------------------
class TestLockDiscipline:
    def test_flags_unlocked_store_mutation(self):
        source = """
        def prune(path):
            path.unlink()
        """
        assert rule_ids(source, path=STORE_PATH) == ["RL001"]

    def test_quiet_under_the_store_lock(self):
        source = """
        class GraphStore:
            def prune(self, path):
                with self._lock.held():
                    path.unlink()
        """
        assert rule_ids(source, path=STORE_PATH) == []

    def test_nested_statements_inherit_the_lock(self):
        source = """
        class GraphStore:
            def prune(self, paths):
                with self._lock.held():
                    for path in paths:
                        if path.exists():
                            path.unlink()
        """
        assert rule_ids(source, path=STORE_PATH) == []

    def test_non_lock_context_manager_does_not_count(self):
        source = """
        def rewrite(path):
            with open(path) as handle:
                path.write_text(handle.read())
        """
        assert rule_ids(source, path=STORE_PATH) == ["RL001"]

    def test_only_store_modules_are_in_scope(self):
        # the same unlocked unlink outside a store module is fine — tmp
        # files, test scaffolding, and atomic single-file writers abound
        source = """
        def cleanup(path):
            path.unlink()
        """
        assert rule_ids(source, path="src/repro/logs/loader.py") == []


# ----------------------------------------------------------------------
# RL002 — salted-hash hygiene
# ----------------------------------------------------------------------
class TestSaltedHashHygiene:
    def test_flags_salted_attribute_in_serialize_sink(self):
        source = """
        import json

        def save(node, handle):
            json.dump({"fp": node.fingerprint}, handle)
        """
        assert rule_ids(source) == ["RL002"]

    def test_flags_tainted_name_flow(self):
        source = """
        import json

        def save(node, handle):
            key = node.skeleton
            json.dump({"key": key}, handle)
        """
        assert rule_ids(source) == ["RL002"]

    def test_flags_return_from_to_dict(self):
        source = """
        def node_to_dict(node):
            return {"fingerprint": node.fingerprint}
        """
        assert rule_ids(source) == ["RL002"]

    def test_flags_return_from_getstate(self):
        source = """
        class Node:
            def __getstate__(self):
                return {"skeleton": self.skeleton}
        """
        assert rule_ids(source) == ["RL002"]

    def test_quiet_on_in_memory_use(self):
        # fingerprints as in-process dict keys are exactly what they are
        # for; only persistence is the violation
        source = """
        class Interner:
            def index_of(self, node):
                return self._by_fingerprint.get(node.fingerprint)
        """
        assert rule_ids(source) == []

    def test_quiet_on_stable_digest(self):
        source = """
        import json

        def save(node, handle):
            json.dump({"fp": stable_fingerprint(node)}, handle)
        """
        assert rule_ids(source) == []


# ----------------------------------------------------------------------
# RL003 — frozen-result immutability
# ----------------------------------------------------------------------
class TestFrozenResultImmutability:
    def test_flags_setattr_escape_hatch_outside_init(self):
        source = """
        class GenerationResult:
            def redact(self):
                object.__setattr__(self, "provenance", {})
        """
        assert rule_ids(source) == ["RL003"]

    def test_flags_mutation_of_annotated_parameter(self):
        source = """
        def publish(result: GenerationResult):
            result.provenance = {}
        """
        assert rule_ids(source) == ["RL003"]

    def test_flags_mutation_of_constructor_binding(self):
        source = """
        def build():
            run = PipelineRun()
            run.n_widgets = 3
            return run
        """
        assert rule_ids(source) == ["RL003"]

    def test_quiet_in_post_init(self):
        source = """
        class StageReport:
            def __post_init__(self):
                object.__setattr__(self, "stats", dict(self.stats))
        """
        assert rule_ids(source) == []

    def test_quiet_on_unrelated_classes(self):
        source = """
        def build(state: PipelineState):
            state.widgets = []
            return state
        """
        assert rule_ids(source) == []


# ----------------------------------------------------------------------
# RL004 — proof polarity
# ----------------------------------------------------------------------
class TestProofPolarity:
    def test_flags_negative_source_fed_to_proof_sink(self):
        source = """
        def flush(store, key, memo):
            store.save_proofs(key, memo)
        """
        assert rule_ids(source) == ["RL004"]

    def test_flags_negative_substring_identifiers(self):
        source = """
        def flush(cache, widgets):
            cache.import_proofs(widgets, self._memo_negatives)
        """
        assert rule_ids(source) == ["RL004"]

    def test_flags_negative_reads_inside_export_proofs(self):
        source = """
        class ClosureCache:
            def export_proofs(self, widgets):
                return list(self._memo.items())
        """
        assert rule_ids(source) == ["RL004"]

    def test_quiet_on_positive_triples(self):
        source = """
        def flush(store, key, cache, widgets):
            store.save_proofs(key, cache.export_proofs(widgets))

        def adopt(cache, widgets, triples):
            cache.import_proofs(widgets, triples)
        """
        assert rule_ids(source) == []

    def test_short_sources_match_exactly_not_as_substrings(self):
        # "memo" must not flag "diff_memo": the diff memo has no
        # polarity, only closure memos do
        source = """
        def flush(store, key, diff_memo):
            store.save_proofs(key, proofs_of(diff_memo))
        """
        assert rule_ids(source) == []


# ----------------------------------------------------------------------
# RL005 — stage purity
# ----------------------------------------------------------------------
class TestStagePurity:
    def test_flags_module_state_mutation(self):
        source = """
        SEEN = {}

        class BadStage(Stage):
            def run(self, state):
                SEEN[state.source] = True
                return state
        """
        assert rule_ids(source) == ["RL005"]

    def test_flags_mutator_call_on_module_binding(self):
        source = """
        RESULTS = []

        class BadStage(Stage):
            def run(self, state):
                RESULTS.append(state)
                return state
        """
        assert rule_ids(source) == ["RL005"]

    def test_flags_global_rebinding(self):
        source = """
        class BadStage(Stage):
            def run(self, state):
                global COUNT
                COUNT = 1
                return state
        """
        assert rule_ids(source) == ["RL005"]

    def test_flags_bare_return(self):
        source = """
        class BadStage(Stage):
            def run(self, state):
                if not state.queries:
                    return
                return state
        """
        assert rule_ids(source) == ["RL005"]

    def test_flags_missing_return(self):
        source = """
        class BadStage(Stage):
            def run(self, state):
                state.record("noop")
        """
        assert rule_ids(source) == ["RL005"]

    def test_quiet_on_compliant_stage(self):
        source = """
        class GoodStage(Stage):
            def run(self, state):
                counts = {}
                counts["n"] = len(state.queries)
                state.record("good", **counts)
                return state
        """
        assert rule_ids(source) == []

    def test_quiet_on_raising_base(self):
        source = """
        class AbstractStage(Stage):
            def run(self, state):
                raise NotImplementedError
        """
        assert rule_ids(source) == []

    def test_non_stage_classes_are_out_of_scope(self):
        source = """
        SEEN = {}

        class Collector:
            def run(self, state):
                SEEN[state.source] = True
        """
        assert rule_ids(source) == []


# ----------------------------------------------------------------------
# RL006 — compiled-artifact hygiene
# ----------------------------------------------------------------------
COMPILER_PATH = "src/repro/compiler/incremental.py"


class TestCompiledArtifactHygiene:
    def test_flags_salted_node_read_in_to_state(self):
        source = """
        def page_to_state(page, query):
            return {"fp": query.fingerprint, "blocks": page.blocks}
        """
        assert rule_ids(source, path=COMPILER_PATH) == ["RL006"]

    def test_flags_tainted_name_flow_into_make_patch(self):
        source = """
        def make_patch(before, after, node):
            key = node.skeleton
            return {"base": key}
        """
        assert rule_ids(source, path=COMPILER_PATH) == ["RL006"]

    def test_flags_nested_node_receiver(self):
        source = """
        def to_state(self, interface):
            return {"q0": interface.initial_query.fingerprint}
        """
        assert rule_ids(source, path=COMPILER_PATH) == ["RL006"]

    def test_quiet_on_stable_compiled_fingerprints(self):
        # CompiledPage.fingerprint / WidgetArtifact.fingerprint hold the
        # process-stable sha256 digest; the attribute *name* alone is not
        # the violation
        source = """
        def to_state(self):
            return {"fingerprint": self.fingerprint}

        def make_patch(before, after):
            return {"base": before.fingerprint, "fingerprint": after.fingerprint}
        """
        assert rule_ids(source, path=COMPILER_PATH) == []

    def test_quiet_on_in_memory_proof_keys(self):
        # salted hashes as in-process memo keys are fine; only the
        # persisted payload builders are sinks
        source = """
        def render_combo(self, interface, query):
            proof_key = (interface.initial_query.fingerprint, query.fingerprint)
            return self._results[proof_key]
        """
        assert rule_ids(source, path=COMPILER_PATH) == []

    def test_only_compiler_modules_are_in_scope(self):
        source = """
        def to_state(query):
            return {"fp": query.fingerprint}
        """
        assert rule_ids(source, path="src/repro/api/session.py") == []


# ----------------------------------------------------------------------
# configuration reaches the rules
# ----------------------------------------------------------------------
def test_vocabulary_comes_from_the_config():
    config = LintConfig(
        store_modules=("*myapp/db.py",), store_mutating_calls=("wipe",)
    )
    source = """
    def clear(table):
        table.wipe()
    """
    assert rule_ids(source, path="src/myapp/db.py", config=config) == ["RL001"]
    assert rule_ids(source, path=STORE_PATH, config=config) == []
