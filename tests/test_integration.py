"""Cross-module integration tests: log generators → pipeline → closure →
schema/compiler, mirroring the paper's end-to-end flows at small scale."""

from tests.helpers import generate_iface
from repro import generate, parse_sql
from repro.compiler import compile_html
from repro.logs import OLAPLogGenerator, SDSSLogGenerator
from repro.schema import SDSS_CATALOG, closure_precision, validate_query



class TestSDSSFlow:
    def test_client_interface_generalises(self):
        """A C1-style client: a few training queries express the rest of
        the session (the Figure 6a behaviour)."""
        log = SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 120)
        asts = log.asts()
        interface = generate_iface(asts[:15])
        assert interface.expressiveness(asts[15:]) == 1.0

    def test_interface_widgets_match_figure_6b(self):
        """Client C1's interface: widgets for the table, and the object id
        (the paper's Figure 6b shows table/attribute/id controls)."""
        log = SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 100)
        interface = generate_iface(log.asts())
        names = {w.widget_type.name for w in interface.widgets}
        assert "slider" in names          # numeric object id
        assert names & {"toggle_button", "dropdown", "radio_button"}  # table

    def test_generated_interface_closure_is_schema_valid(self):
        log = SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 60)
        interface = generate_iface(log.asts())
        precision, count = closure_precision(interface, SDSS_CATALOG, limit=2000)
        assert count > 0
        assert precision == 1.0

    def test_mixed_clients_lower_precision(self):
        gen = SDSSLogGenerator(seed=0)
        mixed = gen.interleaved(3, n_queries=40)
        interface = generate_iface(mixed.asts())
        precision, _ = closure_precision(interface, SDSS_CATALOG, limit=3000)
        single = generate_iface(
            gen.client_log("C1", "object_lookup", 40).asts()
        )
        single_precision, _ = closure_precision(single, SDSS_CATALOG, limit=3000)
        assert precision <= single_precision


class TestOLAPFlow:
    def test_interface_has_figure_6d_shape(self):
        """Drop-downs for aggregation/grouping, sliders for predicates."""
        log = OLAPLogGenerator(seed=1).generate(100)
        interface = generate_iface(log.asts())
        names = {w.widget_type.name for w in interface.widgets}
        assert "slider" in names
        assert names & {"dropdown", "checkbox_list", "radio_button"}

    def test_closure_queries_render_and_reparse(self):
        from repro.sqlparser import render_sql

        log = OLAPLogGenerator(seed=1).generate(40)
        interface = generate_iface(log.asts())
        for query in interface.closure(limit=100):
            assert parse_sql(render_sql(query)) == query


class TestCompilerFlow:
    def test_html_from_generated_interface(self):
        log = SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 40)
        interface = generate_iface(log.asts())
        page = compile_html(interface, title="SDSS C1", limit=256)
        assert "<select" in page

    def test_validate_each_log_query(self):
        log = SDSSLogGenerator(seed=0).client_log("CX", "rect_photometry", 30)
        for ast in log.asts():
            assert validate_query(ast, SDSS_CATALOG).valid
