"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from tests.helpers import generate_iface
from repro import parse_sql
from repro.logs import LISTING_6, LISTING_7, QueryLog



@pytest.fixture
def simple_pair():
    """The Figure 3 / Table 1 query pair."""
    q1 = parse_sql("SELECT year, sales FROM T WHERE cty = 'USA' AND amount > 10")
    q2 = parse_sql("SELECT year, costs FROM T WHERE cty = 'EUR' AND amount > 10")
    return q1, q2


@pytest.fixture
def listing6_interface():
    """Interface mined from Listing 6 (TOP toggle + limit)."""
    return generate_iface(list(LISTING_6))


@pytest.fixture
def listing7_interface():
    """Interface mined from Listing 7 (subquery toggle)."""
    return generate_iface(list(LISTING_7))


@pytest.fixture
def tiny_log():
    return QueryLog.from_statements(
        [
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 2",
            "SELECT a FROM t WHERE x = 5",
        ],
        name="tiny",
    )
