"""User-study substrate tests: tasks, simulator, ANOVA."""

import pytest

from repro.study import (
    SDSS_FORM_FIELDS,
    TASKS,
    UserStudySimulator,
    anova,
    study_interfaces,
    user_study_log,
    widgets_for_task,
)


@pytest.fixture(scope="module")
def interfaces():
    return study_interfaces(user_study_log(600))


class TestTasks:
    def test_four_tasks(self):
        assert [t.number for t in TASKS] == [1, 2, 3, 4]

    def test_targets_parse(self):
        for task in TASKS:
            assert task.target().node_type == "SelectStmt"

    def test_log_tagged_by_task(self):
        log = user_study_log(200)
        assert set(log.clients) == {"task1", "task2", "task3", "task4"}

    def test_log_deterministic(self):
        assert user_study_log(100).statements() == user_study_log(100).statements()

    def test_every_task_expressible(self, interfaces):
        for task in TASKS:
            widgets = widgets_for_task(interfaces[task.number], task)
            assert widgets is not None
            assert len(widgets) >= 1

    def test_inexpressible_task_returns_none(self, interfaces):
        # task 4's interface cannot express task 1 (different tables)
        assert widgets_for_task(interfaces[4], TASKS[0]) is None

    def test_sdss_form_lacks_task1(self):
        assert SDSS_FORM_FIELDS[1] is None


class TestSimulator:
    @pytest.fixture(scope="class")
    def results(self, interfaces):
        return UserStudySimulator(interfaces, n_users=40, seed=7).run()

    def test_observation_count(self, results):
        assert len(results.observations) == 40 * 4

    def test_task1_gap(self, results):
        """The headline result: Task 1 forces the SQL fallback on the SDSS
        form (≈60 s, low accuracy) but has a dedicated widget on the
        generated interface."""
        assert results.mean_time(task=1, interface="sdss") > 50
        assert results.mean_time(task=1, interface="precision") < 15
        assert results.accuracy(task=1, interface="sdss") < 0.8
        assert results.accuracy(task=1, interface="precision") > 0.9

    def test_tasks_2_to_4_precision_faster(self, results):
        for task in (2, 3, 4):
            assert results.mean_time(task=task, interface="precision") < \
                results.mean_time(task=task, interface="sdss")

    def test_accuracy_parity_on_tasks_2_to_4(self, results):
        for task in (2, 3, 4):
            assert results.accuracy(task=task, interface="precision") >= 0.9
            assert results.accuracy(task=task, interface="sdss") >= 0.9

    def test_learning_effect(self, results):
        """Later positions are faster for widget-driven conditions
        (Figure 13)."""
        first = results.mean_time(interface="precision", order=1)
        last = results.mean_time(interface="precision", order=4)
        assert last < first

    def test_confidence_interval_positive(self, results):
        assert results.confidence_95(interface="precision") > 0

    def test_deterministic(self, interfaces):
        a = UserStudySimulator(interfaces, n_users=10, seed=3).run()
        b = UserStudySimulator(interfaces, n_users=10, seed=3).run()
        assert [o.time_s for o in a.observations] == [o.time_s for o in b.observations]


class TestAnova:
    def test_study_factors_significant(self, interfaces):
        results = UserStudySimulator(interfaces, n_users=40, seed=7).run()
        response, factors = results.as_columns()
        table = anova(response, factors, interactions=[("task", "interface")])
        by_term = {row.term: row for row in table}
        for term in ("task", "interface", "order", "task:interface"):
            assert by_term[term].p_value < 1e-6

    def test_null_effect_not_significant(self):
        import random

        rng = random.Random(0)
        response = [rng.gauss(10, 1) for _ in range(200)]
        factors = {"group": [i % 2 for i in range(200)]}
        table = anova(response, factors)
        assert table[0].p_value > 0.01

    def test_detects_real_effect(self):
        response = [10.0 + (5.0 if i % 2 else 0.0) + (i % 7) * 0.01 for i in range(100)]
        factors = {"group": [i % 2 for i in range(100)]}
        table = anova(response, factors)
        assert table[0].p_value < 1e-10

    def test_residual_row_last(self):
        table = anova([1.0, 2.0, 3.0, 4.0], {"g": [0, 0, 1, 1]})
        assert table[-1].term == "Residual"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            anova([], {})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            anova([1.0, 2.0], {"g": [0]})
