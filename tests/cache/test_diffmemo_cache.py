"""The store's fourth table: persisted diff memos.

Covers the serialisation round trip, the store's skip-if-no-graph and
per-key eviction guarantees, ``stats()``'s per-table accounting, and the
session-level inherit/flush wiring.
"""

import json

import pytest

from repro import parse_sql
from repro.api import InterfaceSession, generate
from repro.cache.fingerprint import log_fingerprint, options_fingerprint
from repro.cache.serialize import (
    diff_memo_from_dict,
    diff_memo_to_dict,
    load_diff_memo,
    save_diff_memo,
)
from repro.cache.store import GraphStore
from repro.core.options import PipelineOptions
from repro.errors import CacheError
from repro.graph.build import build_interaction_graph
from repro.treediff import DiffMemo, extract_diffs
from repro.treediff.diff import diff_signature

STATEMENTS = [
    "SELECT a FROM t WHERE x = 1",
    "SELECT a FROM t WHERE x = 2",
    "SELECT a FROM t WHERE x = 5",
    "SELECT a FROM t WHERE x = 9",
]


def _mined():
    queries = [parse_sql(s) for s in STATEMENTS]
    memo = DiffMemo()
    graph = build_interaction_graph(queries, window=2, memo=memo)
    return queries, graph, memo


class TestSerialisation:
    def test_round_trip_preserves_plans(self):
        _queries, _graph, memo = _mined()
        payload = diff_memo_to_dict(memo.export_pairs())
        pairs = diff_memo_from_dict(payload)
        restored = DiffMemo()
        assert restored.import_pairs(pairs) == memo.n_plans
        assert restored.n_plans == memo.n_plans

    def test_file_round_trip(self, tmp_path):
        _queries, _graph, memo = _mined()
        path = tmp_path / "memo.diffmemo.json"
        save_diff_memo(path, memo.export_pairs())
        assert load_diff_memo(path)

    def test_version_mismatch_refused(self, tmp_path):
        _queries, _graph, memo = _mined()
        path = tmp_path / "memo.diffmemo.json"
        save_diff_memo(path, memo.export_pairs())
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(CacheError):
            load_diff_memo(path)

    def test_malformed_payload_refused(self):
        with pytest.raises(CacheError):
            diff_memo_from_dict({"version": 1, "trees": [], "pairs": [{"a": 0}]})


class TestStoreTable:
    def test_save_needs_graph_entry(self, tmp_path):
        queries, graph, memo = _mined()
        store = GraphStore(tmp_path)
        log_fp = log_fingerprint(queries)
        opts_fp = options_fingerprint(PipelineOptions())
        # no graph entry yet: the save is skipped, never orphaning
        assert store.save_diff_memo(log_fp, opts_fp, memo) is None
        assert store.load_diff_memo_pairs(log_fp, opts_fp) is None
        store.save(log_fp, opts_fp, graph)
        assert store.save_diff_memo(log_fp, opts_fp, memo) is not None
        assert len(store.load_diff_memo_pairs(log_fp, opts_fp)) == memo.n_plans

    def test_empty_memo_not_persisted(self, tmp_path):
        queries, graph, _memo = _mined()
        store = GraphStore(tmp_path)
        log_fp = log_fingerprint(queries)
        opts_fp = options_fingerprint(PipelineOptions())
        store.save(log_fp, opts_fp, graph)
        assert store.save_diff_memo(log_fp, opts_fp, DiffMemo()) is None

    def test_loaded_memo_replays(self, tmp_path):
        queries, graph, memo = _mined()
        store = GraphStore(tmp_path)
        log_fp = log_fingerprint(queries)
        opts_fp = options_fingerprint(PipelineOptions())
        store.save(log_fp, opts_fp, graph)
        store.save_diff_memo(log_fp, opts_fp, memo)
        warmed = store.load_diff_memo(log_fp, opts_fp)
        assert warmed is not None and warmed.n_plans == memo.n_plans
        a, b = queries[0], queries[1]
        direct = extract_diffs(a, b)
        replayed = warmed.extract(a, b)
        assert [diff_signature(d) for d in direct] == [
            diff_signature(d) for d in replayed
        ]
        assert warmed.n_replayed == 1 and warmed.n_full == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        queries, graph, memo = _mined()
        store = GraphStore(tmp_path, format="json")
        log_fp = log_fingerprint(queries)
        opts_fp = options_fingerprint(PipelineOptions())
        store.save(log_fp, opts_fp, graph)
        store.save_diff_memo(log_fp, opts_fp, memo)
        store.diffmemo_path_for(log_fp, opts_fp).write_text("{not json")
        assert store.load_diff_memo_pairs(log_fp, opts_fp) is None

    def test_eviction_takes_the_memo_with_the_key(self, tmp_path):
        queries, graph, memo = _mined()
        store = GraphStore(tmp_path, format="json")
        log_fp = log_fingerprint(queries)
        opts_fp = options_fingerprint(PipelineOptions())
        store.save(log_fp, opts_fp, graph)
        store.save_diff_memo(log_fp, opts_fp, memo)
        assert store.prune(max_entries=0) == 1
        assert not store.diffmemo_entries()
        assert store.load_diff_memo_pairs(log_fp, opts_fp) is None

    def test_stats_count_table_and_bytes(self, tmp_path):
        queries, graph, memo = _mined()
        store = GraphStore(tmp_path)
        log_fp = log_fingerprint(queries)
        opts_fp = options_fingerprint(PipelineOptions())
        store.save(log_fp, opts_fp, graph)
        store.save_diff_memo(log_fp, opts_fp, memo)
        stats = store.stats()
        assert stats["n_diff_memos"] == 1
        assert stats["bytes_by_table"]["diff_memos"] > 0
        assert stats["bytes_by_table"]["graphs"] > 0
        assert stats["bytes_by_table"]["widget_sets"] == 0
        assert sum(stats["bytes_by_table"].values()) == stats["total_bytes"]


class TestSessionInheritance:
    def test_flush_publishes_and_new_session_inherits(self, tmp_path):
        options = PipelineOptions(window=2, cache_dir=str(tmp_path))
        first = InterfaceSession(options=options)
        first.append_sql(STATEMENTS)
        first.flush_to_store()
        assert GraphStore(tmp_path).stats()["n_diff_memos"] == 1

        second = InterfaceSession(options=options)
        second.append_sql(STATEMENTS)  # adopts graph + memo
        assert second._diff_memo.n_warmed > 0
        # a *new* pair of a known template shape replays, zero DP work
        result = second.append_sql(["SELECT a FROM t WHERE x = 77"])
        assert result.run.stage("mine").stats["n_alignments_memoised"] > 0
        assert result.run.stage("mine").stats["n_alignments_full"] == 0

    def test_resume_inherits_store_memo(self, tmp_path):
        options = PipelineOptions(window=2, cache_dir=str(tmp_path / "store"))
        session = InterfaceSession(options=options)
        session.append_sql(STATEMENTS)
        session.flush_to_store()
        snapshot = tmp_path / "session.jsonl"
        session.save(snapshot)

        resumed = InterfaceSession.resume(snapshot, options=options)
        assert resumed._diff_memo.n_warmed > 0
        result = resumed.append_sql(["SELECT a FROM t WHERE x = 42"])
        assert result.run.stage("mine").stats["n_alignments_full"] == 0

    def test_one_shot_generate_persists_memo(self, tmp_path):
        options = PipelineOptions(window=2, cache_dir=str(tmp_path))
        generate(STATEMENTS, options=options)
        stats = GraphStore(tmp_path).stats()
        assert stats["n_diff_memos"] == 1
