"""The store's fifth table: persisted compiled pages.

Covers the serialisation round trip, the store's skip-if-no-graph and
per-key eviction guarantees, byte parity between the packed and JSON
layouts (including migration in both directions and through the
daemon), ``stats()``'s per-table accounting, and the session-level
adopt/flush wiring.
"""

import json
import shutil
import tempfile

import pytest

from repro import parse_sql
from repro.api import InterfaceSession
from repro.cache.blockstore import SegmentReader
from repro.cache.fingerprint import log_fingerprint, options_fingerprint
from repro.cache.serialize import (
    compiled_page_from_dict,
    compiled_page_to_dict,
    load_compiled_page,
    save_compiled_page,
)
from repro.cache.store import GraphStore
from repro.compiler.incremental import IncrementalCompiler
from repro.core.options import PipelineOptions
from repro.errors import CacheError
from repro.graph.build import build_interaction_graph
from repro.service import running_daemon
from tests.helpers import generate_iface

STATEMENTS = [
    "SELECT a FROM t WHERE x = 1",
    "SELECT a FROM t WHERE x = 2",
    "SELECT a FROM t WHERE x = 5",
    "SELECT a FROM t WHERE x = 9",
]


@pytest.fixture
def sock_path():
    workdir = tempfile.mkdtemp(prefix="repro-sock-", dir="/tmp")
    yield f"{workdir}/d.sock"
    shutil.rmtree(workdir, ignore_errors=True)


def _payload():
    """Graph + compiled page state for one key."""
    queries = [parse_sql(s) for s in STATEMENTS]
    graph = build_interaction_graph(queries, window=2)
    page = IncrementalCompiler(limit=32).compile(generate_iface(STATEMENTS))
    return {
        "log_fp": log_fingerprint(queries),
        "opts_fp": options_fingerprint(PipelineOptions()),
        "graph": graph,
        "state": page.to_state(),
    }


class TestSerialisation:
    def test_dict_round_trip(self):
        state = _payload()["state"]
        assert compiled_page_from_dict(compiled_page_to_dict(state)) == state

    def test_file_round_trip(self, tmp_path):
        state = _payload()["state"]
        path = tmp_path / "page.compiled.json"
        save_compiled_page(path, state)
        assert load_compiled_page(path) == state

    def test_version_mismatch_refused(self, tmp_path):
        state = _payload()["state"]
        path = tmp_path / "page.compiled.json"
        save_compiled_page(path, state)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(CacheError):
            load_compiled_page(path)

    def test_malformed_payload_refused(self):
        with pytest.raises(CacheError):
            compiled_page_from_dict({"version": 1, "page": []})


@pytest.mark.parametrize("fmt", ["packed", "json"])
class TestStoreTable:
    def test_save_needs_graph_entry(self, tmp_path, fmt):
        p = _payload()
        store = GraphStore(tmp_path, format=fmt)
        # no graph entry yet: the save is skipped, never orphaning
        assert store.save_compiled_page(p["log_fp"], p["opts_fp"], p["state"]) is None
        assert store.load_compiled_page(p["log_fp"], p["opts_fp"]) is None
        store.save(p["log_fp"], p["opts_fp"], p["graph"])
        assert (
            store.save_compiled_page(p["log_fp"], p["opts_fp"], p["state"])
            is not None
        )
        assert store.load_compiled_page(p["log_fp"], p["opts_fp"]) == p["state"]

    def test_eviction_takes_the_page_with_the_key(self, tmp_path, fmt):
        p = _payload()
        store = GraphStore(tmp_path, format=fmt)
        store.save(p["log_fp"], p["opts_fp"], p["graph"])
        store.save_compiled_page(p["log_fp"], p["opts_fp"], p["state"])
        assert store.prune(max_entries=0) == 1
        assert not store.compiled_entries()
        assert store.load_compiled_page(p["log_fp"], p["opts_fp"]) is None

    def test_invalidate_table_drops_only_compiled(self, tmp_path, fmt):
        p = _payload()
        store = GraphStore(tmp_path, format=fmt)
        store.save(p["log_fp"], p["opts_fp"], p["graph"])
        store.save_compiled_page(p["log_fp"], p["opts_fp"], p["state"])
        assert store.invalidate_table("compiled") == 1
        assert store.load_compiled_page(p["log_fp"], p["opts_fp"]) is None
        assert store.has(p["log_fp"], p["opts_fp"])  # the graph survives

    def test_stats_count_table_and_bytes(self, tmp_path, fmt):
        p = _payload()
        store = GraphStore(tmp_path, format=fmt)
        store.save(p["log_fp"], p["opts_fp"], p["graph"])
        store.save_compiled_page(p["log_fp"], p["opts_fp"], p["state"])
        stats = store.stats()
        assert stats["n_compiled"] == 1
        assert stats["bytes_by_table"]["compiled"] > 0
        assert sum(stats["bytes_by_table"].values()) == stats["total_bytes"]


class TestLayoutParity:
    def test_corrupt_json_entry_is_a_miss(self, tmp_path):
        p = _payload()
        store = GraphStore(tmp_path, format="json")
        store.save(p["log_fp"], p["opts_fp"], p["graph"])
        store.save_compiled_page(p["log_fp"], p["opts_fp"], p["state"])
        store.compiled_path_for(p["log_fp"], p["opts_fp"]).write_text("{not json")
        assert store.load_compiled_page(p["log_fp"], p["opts_fp"]) is None

    def test_packed_record_is_the_json_file_byte_for_byte(self, tmp_path):
        p = _payload()
        packed = GraphStore(tmp_path / "packed", format="packed")
        packed.save(p["log_fp"], p["opts_fp"], p["graph"])
        packed.save_compiled_page(p["log_fp"], p["opts_fp"], p["state"])
        jsons = GraphStore(tmp_path / "json", format="json")
        jsons.save(p["log_fp"], p["opts_fp"], p["graph"])
        jsons.save_compiled_page(p["log_fp"], p["opts_fp"], p["state"])
        key = packed.key(p["log_fp"], p["opts_fp"])
        record = SegmentReader(tmp_path / "packed" / "compiled.seg").get(key)
        file_bytes = jsons.compiled_path_for(p["log_fp"], p["opts_fp"]).read_bytes()
        assert record == file_bytes

    def test_migration_round_trip_is_byte_exact(self, tmp_path):
        p = _payload()
        store = GraphStore(tmp_path, format="packed")
        store.save(p["log_fp"], p["opts_fp"], p["graph"])
        store.save_compiled_page(p["log_fp"], p["opts_fp"], p["state"])
        key = store.key(p["log_fp"], p["opts_fp"])
        original = SegmentReader(tmp_path / "compiled.seg").get(key)

        assert store.migrate("json")["migrated_keys"] == 1
        store = GraphStore(tmp_path)
        assert store.format == "json"
        assert (
            store.compiled_path_for(p["log_fp"], p["opts_fp"]).read_bytes()
            == original
        )
        assert store.load_compiled_page(p["log_fp"], p["opts_fp"]) == p["state"]

        assert store.migrate("packed")["migrated_keys"] == 1
        store = GraphStore(tmp_path)
        assert store.format == "packed"
        assert SegmentReader(tmp_path / "compiled.seg").get(key) == original
        assert store.load_compiled_page(p["log_fp"], p["opts_fp"]) == p["state"]


class TestDaemonTable:
    def test_round_trip_and_byte_parity_through_the_daemon(
        self, tmp_path, sock_path
    ):
        p = _payload()
        local = GraphStore(tmp_path / "local", format="packed")
        local.save(p["log_fp"], p["opts_fp"], p["graph"])
        local.save_compiled_page(p["log_fp"], p["opts_fp"], p["state"])
        with running_daemon(tmp_path / "served", sock_path):
            remote = GraphStore(tmp_path / "unused", remote=sock_path)
            remote.save(p["log_fp"], p["opts_fp"], p["graph"])
            remote.save_compiled_page(p["log_fp"], p["opts_fp"], p["state"])
            assert remote.load_compiled_page(p["log_fp"], p["opts_fp"]) == p["state"]
            assert remote.stats()["n_compiled"] == 1
        key = local.key(p["log_fp"], p["opts_fp"])
        assert (
            SegmentReader(tmp_path / "served" / "compiled.seg").get(key)
            == SegmentReader(tmp_path / "local" / "compiled.seg").get(key)
        )


class TestSessionInheritance:
    def test_flush_publishes_and_new_session_adopts(self, tmp_path):
        options = PipelineOptions(window=2, cache_dir=str(tmp_path))
        first = InterfaceSession(options=options)
        first.append_sql(STATEMENTS)
        page = first.compile(limit=32)
        first.flush_to_store()
        assert GraphStore(tmp_path).stats()["n_compiled"] == 1

        second = InterfaceSession(options=options)
        second.append_sql(STATEMENTS)
        assert second.compile(limit=32) == page
        stats = second._compiler.stats
        # every combination replayed from the persisted page's slices
        assert stats.combos_replayed > 0
        assert stats.combos_rendered == 0

    def test_flush_without_compile_skips_the_table(self, tmp_path):
        options = PipelineOptions(window=2, cache_dir=str(tmp_path))
        session = InterfaceSession(options=options)
        session.append_sql(STATEMENTS)
        session.flush_to_store()
        assert GraphStore(tmp_path).stats()["n_compiled"] == 0
