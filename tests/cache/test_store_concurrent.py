"""Multi-process GraphStore integrity under interleaved save/load/prune.

Marked ``stress``: excluded from the default (tier-1) run by the
``-m "not stress"`` addopts and executed by CI's dedicated stress job
(``pytest -m stress``).

Several worker processes hammer one store directory with a tight
``max_bytes`` cap, so LRU eviction runs constantly while other workers
are saving and loading the very same keys.  Both on-disk layouts run
the same matrix (``store_format`` fixture): packed segment files and
one-JSON-file-per-record.  The invariants:

* no corrupt entries — every file still present at the end decodes, and
  every mid-run load either hits (a valid graph) or misses (``None``),
  never raises;
* no orphans — every ``.widgets.json`` / ``.proofs.json`` /
  ``.diffmemo.json`` sits next to its ``.graph.jsonl`` (eviction removes
  a key's files as one unit, and the lock-guarded derived saves refuse
  to recreate them);
* consistent ``stats()`` — every snapshot a concurrent observer takes is
  internally coherent (no negative counters, file counts add up).
"""

import multiprocessing as mp
import os
import random
import sys

import pytest

from repro import parse_sql
from repro.cache.fingerprint import log_fingerprint, options_fingerprint
from repro.cache.serialize import (
    load_diff_memo,
    load_graph,
    load_proofs,
    load_widgets,
)
from repro.cache.store import GraphStore
from repro.core.closure import ClosureCache, expresses
from repro.core.mapper import initialize, merge_widgets
from repro.core.options import PipelineOptions
from repro.graph.build import BuildStats, build_interaction_graph
from repro.treediff.memo import DiffMemo

pytestmark = [
    pytest.mark.stress,
    pytest.mark.skipif(
        not hasattr(os, "fork"), reason="fork-based stress harness"
    ),
]

N_PROCESSES = 4
N_OPS = 150
N_KEYS = 6
#: tight enough that only ~2-3 of the 6 keys fit -> constant eviction
MAX_BYTES = 9_000


def _payloads():
    """Mine the shared key set: every worker derives the same (log,
    options) keys, so all processes contend on the same entries."""
    options = PipelineOptions()
    payloads = []
    for key_index in range(N_KEYS):
        statements = [
            f"SELECT a FROM t{key_index} WHERE x = {value}"
            for value in (1, 2, 5, 9)
        ]
        queries = [parse_sql(s) for s in statements]
        stats = BuildStats()
        memo = DiffMemo()
        graph = build_interaction_graph(queries, window=2, stats=stats, memo=memo)
        widgets = merge_widgets(
            initialize(graph.diffs, options.library, options.annotations),
            options.library,
            options.annotations,
            leaf_diffs=[d for d in graph.diffs if d.is_leaf],
        )
        cache = ClosureCache()
        expresses(widgets, queries[0], queries[1], cache=cache)
        payloads.append(
            {
                "log_fp": log_fingerprint(queries),
                "opts_fp": options_fingerprint(options),
                "graph": graph,
                "stats": stats,
                "widgets": widgets,
                "proofs": cache,
                "diffmemo": memo,
            }
        )
    return payloads


def _hammer(
    root: str,
    seed: int,
    failures: "mp.Queue",
    fmt: str = "auto",
    remote: str | None = None,
) -> None:
    """One worker: N_OPS random interleaved store operations."""
    rng = random.Random(seed)
    try:
        store = GraphStore(root, max_bytes=MAX_BYTES, format=fmt, remote=remote)
        if remote is not None and store.remote is None:
            failures.put(f"worker {seed}: never attached to the daemon")
            return
        payloads = _payloads()
        options = PipelineOptions()
        for _ in range(N_OPS):
            payload = rng.choice(payloads)
            op = rng.choice(
                [
                    "save",
                    "save",
                    "widgets",
                    "proofs",
                    "diffmemo",
                    "load",
                    "load_widgets",
                    "load_diffmemo",
                    "prune",
                ]
            )
            if op == "save":
                store.save(
                    payload["log_fp"], payload["opts_fp"],
                    payload["graph"], payload["stats"],
                )
            elif op == "widgets":
                store.save_widget_set(
                    payload["log_fp"], payload["opts_fp"],
                    payload["widgets"], payload["graph"],
                )
            elif op == "proofs":
                store.save_closure_proofs(
                    payload["log_fp"], payload["opts_fp"],
                    payload["proofs"], payload["widgets"],
                )
            elif op == "diffmemo":
                store.save_diff_memo(
                    payload["log_fp"], payload["opts_fp"], payload["diffmemo"]
                )
            elif op == "load_diffmemo":
                pairs = store.load_diff_memo_pairs(
                    payload["log_fp"], payload["opts_fp"]
                )
                if pairs is not None:
                    assert len(pairs) == payload["diffmemo"].n_plans
            elif op == "load":
                loaded = store.load(payload["log_fp"], payload["opts_fp"])
                if loaded is not None:
                    graph, _stats = loaded
                    assert len(graph.queries) == len(payload["graph"].queries)
            elif op == "load_widgets":
                loaded = store.load(payload["log_fp"], payload["opts_fp"])
                if loaded is not None:
                    graph, _stats = loaded
                    widgets = store.load_widget_set(
                        payload["log_fp"], payload["opts_fp"],
                        graph, options.library, options.annotations,
                    )
                    if widgets is not None:
                        assert len(widgets) == len(payload["widgets"])
            else:
                store.prune()
    except BaseException as exc:  # noqa: BLE001 - report, don't hang join
        failures.put(f"worker {seed}: {type(exc).__name__}: {exc}")


def _assert_stats_consistent(stats: dict) -> None:
    assert stats["n_keys"] >= 0
    assert stats["n_files"] >= 0
    assert stats["total_bytes"] >= 0
    assert sum(stats["bytes_by_table"].values()) == stats["total_bytes"]
    if stats["format"] == "json":
        assert (
            stats["n_files"]
            == stats["n_graphs"]
            + stats["n_widget_sets"]
            + stats["n_proof_sets"]
            + stats["n_diff_memos"]
        )
        assert stats["n_keys"] <= stats["n_files"]
    else:
        # one file per table: per-table accounting must be coherent
        assert stats["n_files"] <= 4
        for table, entry in stats["tables"].items():
            assert entry["n_live"] >= 0, table
            assert entry["n_tombstoned"] >= 0, table
            assert entry["live_bytes"] >= 0, table
            assert entry["compaction_debt_bytes"] >= 0, table
            assert entry["file_bytes"] == stats["bytes_by_table"][table]
            assert (
                entry["live_bytes"] + entry["compaction_debt_bytes"]
                <= entry["file_bytes"] or entry["file_bytes"] == 0
            ), table
    if stats["n_files"] == 0:
        assert stats["total_bytes"] == 0


def _assert_no_orphans_json(store: GraphStore, options: PipelineOptions) -> None:
    """Every surviving file decodes, and derived files sit next to their
    graph entry."""
    for path in store.entries():
        graph, _stats, _extra = load_graph(path)  # raises on corruption
        assert graph.queries
    graph_keys = {p.name[: -len(".graph.jsonl")] for p in store.entries()}
    for path in store.widget_entries():
        key = path.name[: -len(".widgets.json")]
        assert key in graph_keys, f"orphaned widget set {path.name}"
        graph, _stats, _extra = load_graph(store.root / (key + ".graph.jsonl"))
        assert load_widgets(path, graph, options.library, options.annotations)
    for path in store.proof_entries():
        key = path.name[: -len(".proofs.json")]
        assert key in graph_keys, f"orphaned proof set {path.name}"
        assert load_proofs(path)
    for path in store.diffmemo_entries():
        key = path.name[: -len(".diffmemo.json")]
        assert key in graph_keys, f"orphaned diff memo {path.name}"
        assert load_diff_memo(path)


def _assert_no_orphans_packed(store: GraphStore, options: PipelineOptions) -> None:
    """Every live record in every segment decodes, and derived keys are a
    subset of the graph keys."""
    from repro.cache.blockstore import SegmentReader
    from repro.cache.serialize import graph_from_jsonl_bytes

    graphs = SegmentReader(store.root / "graphs.seg")
    graph_keys = set(graphs.keys())
    decoded = {}
    for key in graph_keys:
        payload = graphs.get(key)
        assert payload is not None, f"live graph record {key} unreadable"
        graph, _stats, _extra = graph_from_jsonl_bytes(payload)
        assert graph.queries
        decoded[key] = graph
    for name, check in (
        ("widgets.seg", "widgets"),
        ("proofs.seg", "proofs"),
        ("diffmemos.seg", "memo"),
    ):
        reader = SegmentReader(store.root / name)
        for key in reader.keys():
            assert key in graph_keys, f"orphaned {check} record {key}"
            assert reader.get(key) is not None, f"{name}[{key}] unreadable"


@pytest.fixture(params=["packed", "json"])
def store_format(request):
    return request.param


def test_concurrent_save_load_prune_leaves_a_coherent_store(
    tmp_path, store_format
):
    root = tmp_path / "store"
    ctx = mp.get_context("fork")
    failures: mp.Queue = ctx.Queue()
    processes = [
        ctx.Process(
            target=_hammer, args=(str(root), seed, failures, store_format)
        )
        for seed in range(N_PROCESSES)
    ]
    for process in processes:
        process.start()

    # concurrent observer: every stats() snapshot must be coherent while
    # the workers are mid-flight
    observer = GraphStore(root, format=store_format)
    while any(p.is_alive() for p in processes):
        _assert_stats_consistent(observer.stats())
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0

    reported = []
    while not failures.empty():
        reported.append(failures.get())
    assert not reported, reported

    store = GraphStore(root)
    assert store.format == store_format  # layout auto-detects
    options = PipelineOptions()

    # 1 + 2. no corrupt entries, no orphaned derived records
    if store_format == "json":
        _assert_no_orphans_json(store, options)
    else:
        _assert_no_orphans_packed(store, options)

    # 3. final occupancy is coherent, and one more prune enforces the cap
    final = store.stats()
    _assert_stats_consistent(final)
    store.prune(max_bytes=MAX_BYTES)
    assert store.stats()["total_bytes"] <= MAX_BYTES


def test_concurrent_pruners_never_break_caps_or_orphan(tmp_path, store_format):
    """All processes prune aggressively while two keep saving: the lock
    serialises the scans, so caps hold and keys evict atomically."""
    root = tmp_path / "store"
    store = GraphStore(root, format=store_format)
    payloads = _payloads()
    for payload in payloads:
        store.save(payload["log_fp"], payload["opts_fp"], payload["graph"])
        store.save_widget_set(
            payload["log_fp"], payload["opts_fp"],
            payload["widgets"], payload["graph"],
        )
        store.save_diff_memo(
            payload["log_fp"], payload["opts_fp"], payload["diffmemo"]
        )

    def prune_hard(seed: int, failures: "mp.Queue") -> None:
        try:
            local = GraphStore(str(root), format=store_format)
            rng = random.Random(seed)
            for _ in range(30):
                local.prune(max_entries=rng.choice([1, 2, 3]))
        except BaseException as exc:  # noqa: BLE001
            failures.put(f"pruner {seed}: {exc}")

    ctx = mp.get_context("fork")
    failures: mp.Queue = ctx.Queue()
    pruners = [
        ctx.Process(target=prune_hard, args=(seed, failures)) for seed in range(3)
    ]
    savers = [
        ctx.Process(
            target=_hammer, args=(str(root), 100 + seed, failures, store_format)
        )
        for seed in range(2)
    ]
    for process in pruners + savers:
        process.start()
    for process in pruners + savers:
        process.join(timeout=120)
        assert process.exitcode == 0
    reported = []
    while not failures.empty():
        reported.append(failures.get())
    assert not reported, reported

    if store_format == "json":
        _assert_no_orphans_json(store, PipelineOptions())
    else:
        _assert_no_orphans_packed(store, PipelineOptions())
    assert store.prune(max_entries=1) >= 0
    assert store.stats()["n_keys"] <= 1


def test_concurrent_rpc_save_load_prune_through_a_daemon(tmp_path):
    """The same interleaved matrix, but every worker goes through the
    store daemon: prune-vs-save races serialise on the daemon's ops
    lock instead of the flock, and the shared LRU stays exact."""
    import shutil
    import tempfile

    from repro.service import running_daemon

    root = tmp_path / "store"
    sock_dir = tempfile.mkdtemp(prefix="repro-sock-", dir="/tmp")
    sock = f"{sock_dir}/d.sock"
    ctx = mp.get_context("fork")
    failures: mp.Queue = ctx.Queue()
    try:
        with running_daemon(root, sock, max_bytes=MAX_BYTES) as daemon:
            processes = [
                ctx.Process(
                    target=_hammer_remote, args=(str(root), seed, failures, sock)
                )
                for seed in range(N_PROCESSES)
            ]
            for process in processes:
                process.start()
            for process in processes:
                process.join(timeout=120)
                assert process.exitcode == 0
            meters = daemon.daemon_stats()["clients"]
            # every worker really spoke RPC (constructor ping + traffic)
            assert len(meters) >= N_PROCESSES
            assert sum(m["requests"] for m in meters.values()) >= N_PROCESSES
    finally:
        shutil.rmtree(sock_dir, ignore_errors=True)

    reported = []
    while not failures.empty():
        reported.append(failures.get())
    assert not reported, reported

    store = GraphStore(root)
    assert store.format == "packed"
    _assert_no_orphans_packed(store, PipelineOptions())
    final = store.stats()
    _assert_stats_consistent(final)
    store.prune(max_bytes=MAX_BYTES)
    assert store.stats()["total_bytes"] <= MAX_BYTES


def _hammer_remote(root: str, seed: int, failures: "mp.Queue", sock: str) -> None:
    """A _hammer worker that must stay attached to the daemon end to end
    (a mid-run fail-open would silently bypass the RPC path under test)."""
    _hammer(root, seed, failures, remote=sock)
    try:
        probe = GraphStore(root, remote=sock)
        if probe.remote is None:
            failures.put(f"worker {seed}: daemon unreachable after the run")
    except BaseException as exc:  # noqa: BLE001 - report, don't hang join
        failures.put(f"worker {seed}: post-run probe: {exc}")
