"""GraphStore hit/miss/invalidation and the CacheStage pipeline wiring."""

import pytest

from repro.api import InterfaceSession, generate
from repro.cache import GraphStore, log_fingerprint, options_fingerprint
from repro.core.options import PipelineOptions
from repro.graph.build import BuildStats, build_interaction_graph
from repro.logs import SDSSLogGenerator
from repro.sqlparser.parser import parse_sql

SQL = [
    "SELECT a FROM t WHERE x = 1",
    "SELECT a FROM t WHERE x = 2",
    "SELECT a FROM t WHERE x = 5",
]


@pytest.fixture()
def asts():
    return [parse_sql(s) for s in SQL]


class TestFingerprints:
    def test_same_log_same_fingerprint(self, asts):
        assert log_fingerprint(asts) == log_fingerprint(
            [parse_sql(s) for s in SQL]
        )

    def test_query_order_matters(self, asts):
        assert log_fingerprint(asts) != log_fingerprint(list(reversed(asts)))

    def test_options_fingerprint_tracks_mining_knobs(self):
        base = options_fingerprint(PipelineOptions())
        assert options_fingerprint(PipelineOptions(window=None)) != base
        assert options_fingerprint(PipelineOptions(lca_pruning=False)) != base
        assert options_fingerprint(PipelineOptions(merge=False)) != base

    def test_cache_dir_does_not_affect_fingerprint(self, tmp_path):
        assert options_fingerprint(
            PipelineOptions(cache_dir=str(tmp_path))
        ) == options_fingerprint(PipelineOptions())

    def test_callable_instance_rules_fingerprint_stably(self):
        """Rules without __qualname__ must not fall back to repr (which
        embeds a per-process memory address)."""
        from repro.widgets.base import WidgetType
        from repro.widgets.cost import QuadraticCost

        class AlwaysAccept:
            def __call__(self, domain):
                return True

        def library():
            return [
                WidgetType(
                    name="custom", rule=AlwaysAccept(), cost=QuadraticCost(1.0)
                )
            ]

        first = options_fingerprint(PipelineOptions(library=library()))
        second = options_fingerprint(PipelineOptions(library=library()))
        assert first == second


class TestGraphStore:
    def test_miss_then_hit(self, asts, tmp_path):
        store = GraphStore(tmp_path)
        log_fp = log_fingerprint(asts)
        opts_fp = options_fingerprint(PipelineOptions())
        assert store.load(log_fp, opts_fp) is None
        stats = BuildStats()
        graph = build_interaction_graph(asts, window=2, stats=stats)
        store.save(log_fp, opts_fp, graph, stats)
        cached = store.load(log_fp, opts_fp)
        assert cached is not None
        loaded, loaded_stats = cached
        assert loaded.summary() == graph.summary()
        assert loaded_stats.n_pairs_compared == stats.n_pairs_compared

    def test_corrupt_entry_is_a_miss(self, asts, tmp_path):
        store = GraphStore(tmp_path, format="json")
        log_fp = log_fingerprint(asts)
        opts_fp = options_fingerprint(PipelineOptions())
        store.save(log_fp, opts_fp, build_interaction_graph(asts, window=2))
        store.path_for(log_fp, opts_fp).write_text("garbage\n")
        assert store.load(log_fp, opts_fp) is None

    def test_invalidate_by_log_and_options(self, asts, tmp_path):
        store = GraphStore(tmp_path)
        graph = build_interaction_graph(asts, window=2)
        log_fp = log_fingerprint(asts)
        fp_a = options_fingerprint(PipelineOptions())
        fp_b = options_fingerprint(PipelineOptions(window=None))
        store.save(log_fp, fp_a, graph)
        store.save(log_fp, fp_b, graph)
        assert len(store) == 2
        assert store.invalidate(options_fingerprint=fp_a) == 1
        assert store.load(log_fp, fp_a) is None
        assert store.load(log_fp, fp_b) is not None
        assert store.invalidate(log_fingerprint=log_fp) == 1
        assert len(store) == 0

    def test_clear(self, asts, tmp_path):
        store = GraphStore(tmp_path)
        store.save(
            log_fingerprint(asts),
            options_fingerprint(PipelineOptions()),
            build_interaction_graph(asts, window=2),
        )
        assert store.clear() == 1
        assert len(store) == 0


class TestCacheStagePipeline:
    def test_second_generate_skips_mine(self, tmp_path):
        """Acceptance: with cache_dir set, the second generate() over the
        same log hits the cache and the Mine stage reports skipped."""
        options = PipelineOptions(cache_dir=str(tmp_path))
        first = generate(SQL, options=options)
        second = generate(SQL, options=options)
        assert first.run.stage("cache").stats["hit"] is False
        assert first.run.stage("mine").stats["n_pairs_compared"] > 0
        assert second.run.stage("cache").stats["hit"] is True
        assert second.run.stage("mine").stats["skipped"] is True
        assert second.run.n_pairs_compared == 0
        assert second.interface.widget_summary() == first.interface.widget_summary()
        assert second.interface.cost == pytest.approx(first.interface.cost)

    def test_no_cache_dir_means_no_cache_stage(self):
        result = generate(SQL)
        assert result.run.stage("cache") is None
        assert [r.name for r in result.run.stages] == [
            "parse", "mine", "map", "merge",
        ]

    def test_options_change_misses(self, tmp_path):
        options = PipelineOptions(cache_dir=str(tmp_path))
        generate(SQL, options=options)
        other = generate(
            SQL, options=PipelineOptions(cache_dir=str(tmp_path), window=None)
        )
        assert other.run.stage("cache").stats["hit"] is False
        assert other.run.stage("mine").stats["n_pairs_compared"] > 0

    def test_unfingerprintable_log_fails_open(self, tmp_path):
        """Exotic attribute values that cannot be JSON-fingerprinted must
        disable caching for the run, not crash it."""
        from repro.sqlparser.astnodes import Node

        weird = [
            Node("SelectStmt", {"cols": ("a", "b")}, []),
            Node("SelectStmt", {"cols": ("a", "c")}, []),
        ]
        options = PipelineOptions(cache_dir=str(tmp_path))
        result = generate(weird, options=options)
        stats = result.run.stage("cache").stats
        assert stats["hit"] is False
        assert "error" in stats
        assert result.run.stage("mine").stats["n_pairs_compared"] > 0

    def test_log_change_misses(self, tmp_path):
        options = PipelineOptions(cache_dir=str(tmp_path))
        generate(SQL, options=options)
        changed = generate(SQL + ["SELECT a FROM t WHERE x = 9"], options=options)
        assert changed.run.stage("cache").stats["hit"] is False

    def test_cached_result_equivalent_on_larger_log(self, tmp_path):
        asts = SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 50).asts()
        options = PipelineOptions(cache_dir=str(tmp_path))
        plain = generate(asts)
        warm = generate(asts, options=options)
        cached = generate(asts, options=options)
        assert cached.run.stage("mine").stats["skipped"] is True
        assert cached.interface.widget_summary() == plain.interface.widget_summary()
        assert warm.interface.widget_summary() == plain.interface.widget_summary()


class TestSessionStoreSharing:
    def test_session_first_append_adopts_generate_cache(self, tmp_path):
        options = PipelineOptions(cache_dir=str(tmp_path))
        one_shot = generate(SQL, options=options)
        session = InterfaceSession(options=PipelineOptions(cache_dir=str(tmp_path)))
        result = session.append_sql(SQL)
        assert result.run.stage("mine").stats["cache_hit"] is True
        assert result.run.n_pairs_compared == 0
        # totals still reflect the alignments the store's producer paid for
        assert session.n_pairs_compared == one_shot.run.n_pairs_compared
        assert result.interface.widget_summary() == one_shot.interface.widget_summary()

    def test_session_flush_populates_store_for_generate(self, tmp_path):
        session = InterfaceSession(options=PipelineOptions(cache_dir=str(tmp_path)))
        session.append_sql(SQL[:2])
        session.append_sql(SQL[2:])
        session.flush_to_store()
        later = generate(SQL, options=PipelineOptions(cache_dir=str(tmp_path)))
        assert later.run.stage("cache").stats["hit"] is True
        assert later.interface.widget_summary() == session.interface.widget_summary()

    def test_flush_is_explicit_and_validated(self, tmp_path):
        from repro.errors import LogError

        session = InterfaceSession(options=PipelineOptions(cache_dir=str(tmp_path)))
        with pytest.raises(LogError, match="before the first append"):
            session.flush_to_store()
        session.append_sql(SQL)
        # appends alone do not write the store
        assert generate(
            SQL, options=PipelineOptions(cache_dir=str(tmp_path))
        ).run.stage("cache").stats["hit"] is False
        # no cache_dir -> flush is a silent no-op
        InterfaceSession().flush_to_store()
