"""Regression: a torn ``cache migrate`` must heal at the next open.

A ``migrate`` killed between batches leaves *both* layouts in the
directory: segments holding the already-converted keys (their source
files removed) and legacy JSON files for the rest.  ``format="auto"``
prefers segments, so such a store used to silently serve only the
converted half — the pending JSON keys became invisible misses — and an
explicitly-``json`` open would write entries a later ``auto`` open
never saw.  Opening a mixed directory now *resumes* the migration
toward the resolved format, so every key is always presented in exactly
one layout, byte-identically.
"""

import shutil

import pytest

from repro.cache.blockstore import SegmentReader
from repro.cache.store import GraphStore
from tests.cache.test_packed_store import _mined, _save_all

SEGMENTS = ("graphs.seg", "widgets.seg", "proofs.seg", "diffmemos.seg")
JSON_SUFFIXES = (".graph.jsonl", ".widgets.json", ".proofs.json", ".diffmemo.json")
OTHER_SQL = [
    "SELECT b FROM u WHERE y = 3",
    "SELECT b FROM u WHERE y = 9",
    "SELECT b FROM u WHERE y = 4",
    "SELECT b FROM u WHERE y = 7",
]


def _key(store, payload):
    return store.key(payload["log_fp"], payload["opts_fp"])


def _torn_json_to_packed(tmp_path):
    """The exact on-disk state of a json→packed migration killed after
    its first one-key batch: segments hold ``migrated`` (its files are
    gone), ``pending`` is still four JSON files."""
    migrated, pending = _mined(), _mined(OTHER_SQL)
    root = tmp_path / "store"
    json_store = GraphStore(root, format="json")
    _save_all(json_store, migrated)
    _save_all(json_store, pending)
    pending_bytes = {
        suffix: (root / (_key(json_store, pending) + suffix)).read_bytes()
        for suffix in JSON_SUFFIXES
    }
    aux = GraphStore(tmp_path / "aux", format="packed")
    _save_all(aux, migrated)
    for name in SEGMENTS:
        shutil.copy(tmp_path / "aux" / name, root / name)
    for suffix in JSON_SUFFIXES:
        (root / (_key(json_store, migrated) + suffix)).unlink()
    return root, migrated, pending, pending_bytes


class TestResumeTowardPacked:
    def test_auto_open_heals_and_serves_every_key(self, tmp_path):
        root, migrated, pending, pending_bytes = _torn_json_to_packed(tmp_path)
        healed = GraphStore(root)  # format="auto": segments win, resume
        assert healed.format == "packed"
        # the regression: the pending key used to be an invisible miss
        assert healed.has(pending["log_fp"], pending["opts_fp"])
        assert healed.has(migrated["log_fp"], migrated["opts_fp"])
        graph, _ = healed.load(pending["log_fp"], pending["opts_fp"])
        assert graph.summary() == pending["graph"].summary()
        # no legacy files left behind: exactly one layout remains
        leftovers = [
            p.name
            for suffix in JSON_SUFFIXES
            for p in root.glob("*" + suffix)
        ]
        assert leftovers == []
        # the resumed records are the JSON files' bytes, untouched
        key = _key(healed, pending)
        for name, suffix in zip(SEGMENTS, JSON_SUFFIXES):
            assert SegmentReader(root / name).get(key) == pending_bytes[suffix]

    def test_healed_store_is_stable_on_reopen(self, tmp_path):
        root, _migrated, pending, _bytes = _torn_json_to_packed(tmp_path)
        GraphStore(root)  # heal
        again = GraphStore(root)  # no mixed state left to resume
        assert again.format == "packed"
        assert sorted(again.keys()) == sorted(
            SegmentReader(root / "graphs.seg").keys()
        )
        assert len(again.keys()) == 2

    def test_stats_count_every_key_after_heal(self, tmp_path):
        root, *_ = _torn_json_to_packed(tmp_path)
        stats = GraphStore(root).stats()
        assert stats["n_keys"] == 2
        assert stats["n_graphs"] == 2
        assert stats["format"] == "packed"


class TestResumeTowardJson:
    def test_explicit_json_open_converts_the_segments(self, tmp_path):
        """A json-format open of a mixed directory used to write entries
        into files while ``auto`` readers only saw the segments; now it
        finishes the packed→json direction instead."""
        root = tmp_path / "store"
        a, b = _mined(), _mined(OTHER_SQL)
        packed = GraphStore(root, format="packed")
        _save_all(packed, a)
        _save_all(packed, b)
        # a torn packed→json run: one key's files already written, the
        # segments (still the source of truth) left in place
        key_a = _key(packed, a)
        reader = SegmentReader(root / "graphs.seg")
        (root / (key_a + ".graph.jsonl")).write_bytes(reader.get(key_a))

        healed = GraphStore(root, format="json")
        assert healed.format == "json"
        for name in SEGMENTS:
            assert not (root / name).exists()
        for payload in (a, b):
            assert healed.has(payload["log_fp"], payload["opts_fp"])
            graph, _ = healed.load(payload["log_fp"], payload["opts_fp"])
            assert graph.summary() == payload["graph"].summary()
        assert GraphStore(root).format == "json"  # auto agrees afterwards

    def test_interrupted_migrate_then_rerun_finishes(self, tmp_path):
        """Re-running ``migrate`` on a healed store is a clean no-op —
        the resume already finished the job."""
        root, *_ = _torn_json_to_packed(tmp_path)
        store = GraphStore(root)
        summary = store.migrate("packed")
        assert summary["migrated_keys"] == 0
        assert len(store.keys()) == 2
