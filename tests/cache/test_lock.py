"""StoreLock semantics, including the no-``fcntl`` (Windows) fallback.

The fallback degrades to a process-local ``threading.Lock``; these tests
pin down that single-process correctness — mutual exclusion between
threads, per-thread reentrancy, exception safety — survives the
degradation, by monkeypatching ``repro.cache.lock.fcntl`` to ``None``
exactly as the import-time probe leaves it on Windows.
"""

import threading

import pytest

import repro.cache.lock as lock_mod
from repro.cache.lock import LOCK_FILE_NAME, StoreLock


@pytest.fixture(params=["flock", "fallback"])
def store_lock(request, tmp_path, monkeypatch):
    """One StoreLock per backend: the real flock path and the degraded
    threading-only path run the same assertions."""
    if request.param == "fallback":
        monkeypatch.setattr(lock_mod, "fcntl", None)
    elif lock_mod.fcntl is None:  # pragma: no cover - non-POSIX host
        pytest.skip("fcntl unavailable; only the fallback path exists here")
    return StoreLock(tmp_path)


def test_held_is_reentrant(store_lock):
    with store_lock.held():
        with store_lock.held():
            with store_lock.held():
                assert store_lock._depth() == 3
        assert store_lock._depth() == 1
    assert store_lock._depth() == 0


def test_depth_resets_after_exception(store_lock):
    with pytest.raises(RuntimeError):
        with store_lock.held():
            raise RuntimeError("boom")
    assert store_lock._depth() == 0
    # and the lock is re-acquirable afterwards (not poisoned)
    with store_lock.held():
        assert store_lock._depth() == 1


def test_threads_are_mutually_excluded(store_lock):
    """N threads increment a shared counter non-atomically under the
    lock; any interleaving inside the critical section loses updates."""
    counter = {"value": 0}
    in_section = threading.Event()
    overlap = []

    def work():
        for _ in range(200):
            with store_lock.held():
                if in_section.is_set():  # pragma: no cover - failure path
                    overlap.append(True)
                in_section.set()
                current = counter["value"]
                counter["value"] = current + 1
                in_section.clear()

    threads = [threading.Thread(target=work) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not overlap
    assert counter["value"] == 4 * 200


def test_blocked_thread_waits_for_release(store_lock):
    entered = threading.Event()
    release = threading.Event()
    order = []

    def holder():
        with store_lock.held():
            entered.set()
            release.wait(timeout=10)
            order.append("holder")

    def waiter():
        entered.wait(timeout=10)
        with store_lock.held():
            order.append("waiter")

    threads = [threading.Thread(target=holder), threading.Thread(target=waiter)]
    for thread in threads:
        thread.start()
    entered.wait(timeout=10)
    release.set()
    for thread in threads:
        thread.join(timeout=10)
    assert order == ["holder", "waiter"]


def test_fallback_does_not_touch_the_lock_file(tmp_path, monkeypatch):
    monkeypatch.setattr(lock_mod, "fcntl", None)
    lock = StoreLock(tmp_path)
    with lock.held():
        pass
    # without flock there is nothing to latch onto; the fallback must
    # not create stray files in the store directory
    assert not (tmp_path / LOCK_FILE_NAME).exists()


@pytest.mark.skipif(lock_mod.fcntl is None, reason="needs fcntl")
def test_flock_path_creates_the_lock_file(tmp_path):
    lock = StoreLock(tmp_path)
    with lock.held():
        pass
    assert (tmp_path / LOCK_FILE_NAME).exists()


def test_store_operations_survive_the_fallback(tmp_path, monkeypatch):
    """End to end: a GraphStore on the degraded lock still saves, loads,
    and prunes — the guarantees shrink to single-process, they do not
    vanish."""
    monkeypatch.setattr(lock_mod, "fcntl", None)
    from repro import parse_sql
    from repro.cache.fingerprint import log_fingerprint, options_fingerprint
    from repro.cache.store import GraphStore
    from repro.core.options import PipelineOptions
    from repro.graph.build import BuildStats, build_interaction_graph

    queries = [
        parse_sql("SELECT a FROM t WHERE x = 1"),
        parse_sql("SELECT a FROM t WHERE x = 2"),
    ]
    stats = BuildStats()
    graph = build_interaction_graph(queries, stats=stats)
    store = GraphStore(tmp_path / "cache")
    log_fp = log_fingerprint(queries)
    opts_fp = options_fingerprint(PipelineOptions())
    store.save(log_fp, opts_fp, graph, stats)
    cached = store.load(log_fp, opts_fp)
    assert cached is not None
    loaded, _ = cached
    assert loaded.n_diffs == graph.n_diffs
    store.invalidate(log_fp, opts_fp)
    assert store.load(log_fp, opts_fp) is None
