"""The third content-addressed table: persisted closure proofs."""

import json

import pytest

from repro import parse_sql
from repro.api import InterfaceSession, generate
from repro.cache.fingerprint import log_fingerprint, options_fingerprint
from repro.cache.serialize import (
    FORMAT_VERSION,
    load_proofs,
    proofs_from_dict,
    proofs_to_dict,
    save_proofs,
)
from repro.cache.store import GraphStore
from repro.core.closure import ClosureCache, expresses
from repro.core.options import PipelineOptions
from repro.errors import CacheError
from repro.paths import Path

STATEMENTS = [
    "SELECT a FROM t WHERE x = 1",
    "SELECT a FROM t WHERE x = 2",
    "SELECT a FROM t WHERE x = 5",
]


@pytest.fixture
def mined():
    result = generate(STATEMENTS)
    return result.interface


def _proven_cache(interface):
    cache = ClosureCache()
    assert expresses(
        interface.widgets,
        interface.initial_query,
        parse_sql("SELECT a FROM t WHERE x = 2"),
        cache=cache,
    )
    assert len(cache) > 0
    return cache


class TestSerialisation:
    def test_round_trip_preserves_triples(self, mined):
        cache = _proven_cache(mined)
        triples = cache.export_proofs(mined.widgets)
        decoded = proofs_from_dict(proofs_to_dict(triples))
        assert len(decoded) == len(triples)
        for (c1, t1, b1), (c2, t2, b2) in zip(triples, decoded):
            assert c1.equals(c2) and t1.equals(t2) and b1 == b2

    def test_imported_proofs_rearm_a_fresh_cache(self, mined):
        cache = _proven_cache(mined)
        triples = proofs_from_dict(
            proofs_to_dict(cache.export_proofs(mined.widgets))
        )
        fresh = ClosureCache()
        adopted = fresh.import_proofs(mined.widgets, triples)
        assert adopted == len(cache)
        assert len(fresh) == len(cache)
        # and the armed cache answers without re-deriving the cover
        assert mined.expresses(
            parse_sql("SELECT a FROM t WHERE x = 2"), cache=fresh
        )

    def test_export_for_a_different_widget_set_is_empty(self, mined):
        cache = _proven_cache(mined)
        other = generate(["SELECT b FROM u WHERE y = 1",
                          "SELECT b FROM u WHERE y = 2"]).interface
        assert cache.export_proofs(other.widgets) == []

    def test_file_round_trip_and_version_check(self, tmp_path, mined):
        cache = _proven_cache(mined)
        path = tmp_path / "k.proofs.json"
        save_proofs(path, cache.export_proofs(mined.widgets))
        assert load_proofs(path)
        payload = json.loads(path.read_text())
        payload["version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CacheError):
            load_proofs(path)

    def test_malformed_payloads_raise(self, tmp_path):
        path = tmp_path / "bad.proofs.json"
        path.write_text("{not json")
        with pytest.raises(CacheError):
            load_proofs(path)
        path.write_text(json.dumps({"version": FORMAT_VERSION,
                                    "trees": [], "proofs": [{"c": 0}]}))
        with pytest.raises(CacheError):
            load_proofs(path)

    def test_base_paths_survive(self, mined):
        cache = _proven_cache(mined)
        triples = cache.export_proofs(mined.widgets)
        for _c, _t, base in proofs_from_dict(proofs_to_dict(triples)):
            assert isinstance(base, Path)


class TestStoreTable:
    def _fps(self, options):
        queries = [parse_sql(s) for s in STATEMENTS]
        return log_fingerprint(queries), options_fingerprint(options)

    def test_save_requires_the_graph_entry(self, tmp_path, mined):
        """Proofs must never orphan: without the key's graph entry the
        save is refused."""
        store = GraphStore(tmp_path)
        options = PipelineOptions()
        log_fp, opts_fp = self._fps(options)
        cache = _proven_cache(mined)
        assert store.save_closure_proofs(log_fp, opts_fp, cache, mined.widgets) is None
        assert store.proof_entries() == []

    def test_round_trip_through_the_store(self, tmp_path, mined):
        options = PipelineOptions(cache_dir=str(tmp_path))
        result = generate(STATEMENTS, options=options)  # populates graph+widgets
        store = GraphStore(tmp_path)
        log_fp, opts_fp = self._fps(options)
        cache = _proven_cache(result.interface)
        assert store.save_closure_proofs(
            log_fp, opts_fp, cache, result.interface.widgets
        )
        loaded = store.load_closure_proofs(
            log_fp, opts_fp, result.interface.widgets
        )
        assert loaded is not None and len(loaded) == len(cache)

    def test_corrupt_proof_file_is_a_miss(self, tmp_path, mined):
        options = PipelineOptions(cache_dir=str(tmp_path))
        result = generate(STATEMENTS, options=options)
        store = GraphStore(tmp_path)
        log_fp, opts_fp = self._fps(options)
        cache = _proven_cache(result.interface)
        path = store.save_closure_proofs(
            log_fp, opts_fp, cache, result.interface.widgets
        )
        path.write_text("garbage")
        assert store.load_closure_proofs(
            log_fp, opts_fp, result.interface.widgets
        ) is None

    def test_eviction_removes_proofs_with_their_key(self, tmp_path, mined):
        options = PipelineOptions(cache_dir=str(tmp_path))
        result = generate(STATEMENTS, options=options)
        store = GraphStore(tmp_path)
        log_fp, opts_fp = self._fps(options)
        cache = _proven_cache(result.interface)
        store.save_closure_proofs(log_fp, opts_fp, cache, result.interface.widgets)
        assert store.stats()["n_proof_sets"] == 1
        assert store.prune(max_entries=0) == 1
        assert store.proof_entries() == []
        assert store.entries() == []


class TestSessionAdoption:
    def test_proofs_survive_session_death(self, tmp_path):
        options = PipelineOptions(cache_dir=str(tmp_path))
        first = InterfaceSession(options=options)
        first.append_sql(STATEMENTS)
        assert first.expresses("SELECT a FROM t WHERE x = 3")
        first.flush_to_store()
        assert GraphStore(tmp_path).stats()["n_proof_sets"] == 1

        second = InterfaceSession(options=PipelineOptions(cache_dir=str(tmp_path)))
        second.append_sql(STATEMENTS)  # adopts the cached graph
        assert second.expresses("SELECT a FROM t WHERE x = 3")
        assert second._proofs_adopted > 0

    def test_adoption_probes_once_per_revision(self, tmp_path):
        options = PipelineOptions(cache_dir=str(tmp_path))
        session = InterfaceSession(options=options)
        session.append_sql(STATEMENTS)
        session.expresses("SELECT a FROM t WHERE x = 4")
        probed = session._proofs_probed
        session.expresses("SELECT a FROM t WHERE x = 4")
        assert session._proofs_probed == probed
        session.append_sql(["SELECT a FROM t WHERE x = 9"])
        session.expresses("SELECT a FROM t WHERE x = 4")
        assert session._proofs_probed != probed

    def test_no_store_means_no_probe(self):
        session = InterfaceSession()
        session.append_sql(STATEMENTS)
        session.expresses("SELECT a FROM t WHERE x = 3")
        assert session._proofs_probed is None
