"""The packed GraphStore layout: parity with JSON, migration, eviction.

The packed format's core contract is that a segment *record* is the
JSON layout's *file content*, byte for byte.  These tests hold the two
layouts side by side through identical save sequences and compare raw
bytes after every append, then exercise what only the packed layout
does: in-segment tombstone eviction, batched TOUCH recency, per-table
segment accounting, and in-place migration in both directions.
"""

import time

import pytest

from repro import parse_sql
from repro.api import generate
from repro.cache.blockstore import SegmentReader
from repro.cache.fingerprint import log_fingerprint, options_fingerprint
from repro.cache.store import GraphStore
from repro.core.closure import ClosureCache, expresses
from repro.core.mapper import initialize, merge_widgets
from repro.core.options import PipelineOptions
from repro.graph.build import BuildStats, build_interaction_graph
from repro.treediff.memo import DiffMemo

SQL = [
    "SELECT a FROM t WHERE x = 1",
    "SELECT a FROM t WHERE x = 2",
    "SELECT a FROM t WHERE x = 5",
    "SELECT a FROM t WHERE x = 9",
]


def _mined(statements=None):
    """One fully-derived payload set: graph, widgets, proofs, memo."""
    options = PipelineOptions()
    queries = [parse_sql(s) for s in (statements or SQL)]
    stats = BuildStats()
    memo = DiffMemo()
    graph = build_interaction_graph(queries, window=2, stats=stats, memo=memo)
    widgets = merge_widgets(
        initialize(graph.diffs, options.library, options.annotations),
        options.library,
        options.annotations,
        leaf_diffs=[d for d in graph.diffs if d.is_leaf],
    )
    cache = ClosureCache()
    expresses(widgets, queries[0], queries[1], cache=cache)
    return {
        "options": options,
        "log_fp": log_fingerprint(queries),
        "opts_fp": options_fingerprint(options),
        "graph": graph,
        "stats": stats,
        "widgets": widgets,
        "proofs": cache,
        "memo": memo,
    }


def _save_all(store, payload):
    store.save(payload["log_fp"], payload["opts_fp"],
               payload["graph"], payload["stats"])
    store.save_widget_set(payload["log_fp"], payload["opts_fp"],
                          payload["widgets"], payload["graph"])
    store.save_closure_proofs(payload["log_fp"], payload["opts_fp"],
                              payload["proofs"], payload["widgets"])
    store.save_diff_memo(payload["log_fp"], payload["opts_fp"],
                         payload["memo"])


class TestFormatSelection:
    def test_empty_directory_defaults_to_packed(self, tmp_path):
        assert GraphStore(tmp_path).format == "packed"

    def test_json_layout_auto_detected(self, tmp_path):
        payload = _mined()
        json_store = GraphStore(tmp_path, format="json")
        json_store.save(payload["log_fp"], payload["opts_fp"], payload["graph"])
        assert GraphStore(tmp_path).format == "json"

    def test_packed_layout_auto_detected(self, tmp_path):
        payload = _mined()
        packed = GraphStore(tmp_path)
        packed.save(payload["log_fp"], payload["opts_fp"], payload["graph"])
        assert GraphStore(tmp_path).format == "packed"

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            GraphStore(tmp_path, format="parquet")

    def test_bad_zlib_level_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            GraphStore(tmp_path, zlib_level=42)


class TestParity:
    """A packed record is the JSON file's content, byte for byte."""

    def _segment_bytes(self, root, name, key):
        return SegmentReader(root / name).get(key)

    def test_all_four_tables_byte_identical(self, tmp_path):
        payload = _mined()
        json_store = GraphStore(tmp_path / "json", format="json")
        packed = GraphStore(tmp_path / "packed", format="packed")
        key = json_store.key(payload["log_fp"], payload["opts_fp"])

        # graph
        json_store.save(payload["log_fp"], payload["opts_fp"],
                        payload["graph"], payload["stats"])
        packed.save(payload["log_fp"], payload["opts_fp"],
                    payload["graph"], payload["stats"])
        graph_file = json_store.path_for(payload["log_fp"], payload["opts_fp"])
        assert (
            self._segment_bytes(packed.root, "graphs.seg", key)
            == graph_file.read_bytes()
        )

        # widget set
        json_store.save_widget_set(payload["log_fp"], payload["opts_fp"],
                                   payload["widgets"], payload["graph"])
        packed.save_widget_set(payload["log_fp"], payload["opts_fp"],
                               payload["widgets"], payload["graph"])
        assert self._segment_bytes(
            packed.root, "widgets.seg", key
        ) == json_store.widgets_path_for(
            payload["log_fp"], payload["opts_fp"]
        ).read_bytes()

        # closure proofs
        json_store.save_closure_proofs(payload["log_fp"], payload["opts_fp"],
                                       payload["proofs"], payload["widgets"])
        packed.save_closure_proofs(payload["log_fp"], payload["opts_fp"],
                                   payload["proofs"], payload["widgets"])
        assert self._segment_bytes(
            packed.root, "proofs.seg", key
        ) == json_store.proofs_path_for(
            payload["log_fp"], payload["opts_fp"]
        ).read_bytes()

        # diff memo
        json_store.save_diff_memo(payload["log_fp"], payload["opts_fp"],
                                  payload["memo"])
        packed.save_diff_memo(payload["log_fp"], payload["opts_fp"],
                              payload["memo"])
        assert self._segment_bytes(
            packed.root, "diffmemos.seg", key
        ) == json_store.diffmemo_path_for(
            payload["log_fp"], payload["opts_fp"]
        ).read_bytes()

    def test_parity_survives_rewrites(self, tmp_path):
        """Re-saving a key keeps the layouts byte-identical (the packed
        store may demote the append to a touch — what's *read* matters)."""
        payload = _mined()
        json_store = GraphStore(tmp_path / "json", format="json")
        packed = GraphStore(tmp_path / "packed", format="packed")
        key = json_store.key(payload["log_fp"], payload["opts_fp"])
        for _ in range(3):
            json_store.save(payload["log_fp"], payload["opts_fp"],
                            payload["graph"], payload["stats"])
            packed.save(payload["log_fp"], payload["opts_fp"],
                        payload["graph"], payload["stats"])
            assert self._segment_bytes(
                packed.root, "graphs.seg", key
            ) == json_store.path_for(
                payload["log_fp"], payload["opts_fp"]
            ).read_bytes()

    def test_loads_round_trip_identically(self, tmp_path):
        payload = _mined()
        options = payload["options"]
        json_store = GraphStore(tmp_path / "json", format="json")
        packed = GraphStore(tmp_path / "packed", format="packed")
        _save_all(json_store, payload)
        _save_all(packed, payload)
        for store in (json_store, packed):
            graph, stats = store.load(payload["log_fp"], payload["opts_fp"])
            assert graph.summary() == payload["graph"].summary()
            assert stats.n_pairs_compared == payload["stats"].n_pairs_compared
            widgets = store.load_widget_set(
                payload["log_fp"], payload["opts_fp"], graph,
                options.library, options.annotations,
            )
            assert len(widgets) == len(payload["widgets"])
            assert store.load_closure_proofs(
                payload["log_fp"], payload["opts_fp"], payload["widgets"]
            )
            assert (
                len(store.load_diff_memo_pairs(
                    payload["log_fp"], payload["opts_fp"]
                ))
                == payload["memo"].n_plans
            )


class TestMigration:
    def test_round_trip_is_byte_exact(self, tmp_path):
        payload = _mined()
        store = GraphStore(tmp_path, format="packed")
        _save_all(store, payload)
        key = store.key(payload["log_fp"], payload["opts_fp"])
        packed_bytes = {
            name: SegmentReader(store.root / name).get(key)
            for name in ("graphs.seg", "widgets.seg", "proofs.seg",
                         "diffmemos.seg")
        }

        summary = store.migrate("json")
        assert summary["format"] == "json" and summary["migrated_keys"] == 1
        assert store.format == "json"
        assert not (tmp_path / "graphs.seg").exists()
        assert store.path_for(
            payload["log_fp"], payload["opts_fp"]
        ).read_bytes() == packed_bytes["graphs.seg"]
        assert GraphStore(tmp_path).format == "json"  # auto-detect agrees

        summary = store.migrate("packed")
        assert summary["format"] == "packed" and summary["migrated_keys"] == 1
        assert store.format == "packed"
        assert not store.entries()
        for name, expected in packed_bytes.items():
            assert SegmentReader(store.root / name).get(key) == expected
        # and the migrated store still loads through the public API
        graph, _ = store.load(payload["log_fp"], payload["opts_fp"])
        assert graph.summary() == payload["graph"].summary()

    def test_migrate_to_current_format_is_a_noop(self, tmp_path):
        payload = _mined()
        store = GraphStore(tmp_path)
        _save_all(store, payload)
        summary = store.migrate("packed")
        assert summary["migrated_keys"] == 0
        assert store.load(payload["log_fp"], payload["opts_fp"]) is not None

    def test_migrate_rejects_unknown_target(self, tmp_path):
        with pytest.raises(ValueError):
            GraphStore(tmp_path).migrate("sqlite")

    def test_packed_to_json_drops_orphans(self, tmp_path):
        payload = _mined()
        store = GraphStore(tmp_path, format="packed")
        _save_all(store, payload)
        # fabricate an orphan: a widgets record whose graph key is gone
        store._segment("widget_sets").append_records(
            [("0" * 16 + "-" + "1" * 16, b'{"version": 1}\n', None)]
        )
        summary = store.migrate("json")
        assert summary["orphans_dropped"] == 1
        assert len(store.widget_entries()) == 1  # only the real key

    def test_json_to_packed_drops_orphans(self, tmp_path):
        payload = _mined()
        store = GraphStore(tmp_path, format="json")
        _save_all(store, payload)
        orphan = store.root / ("2" * 16 + "-" + "3" * 16 + ".widgets.json")
        orphan.write_text('{"version": 1}\n')
        summary = store.migrate("packed")
        assert summary["orphans_dropped"] == 1
        assert not orphan.exists()
        widgets = SegmentReader(store.root / "widgets.seg")
        assert widgets.keys() == [
            store.key(payload["log_fp"], payload["opts_fp"])
        ]

    def test_many_keys_round_trip(self, tmp_path):
        store = GraphStore(tmp_path, format="json")
        fps = []
        for i in range(6):
            statements = [
                f"SELECT a FROM t{i} WHERE x = {v}" for v in (1, 2, 5)
            ]
            payload = _mined(statements)
            _save_all(store, payload)
            fps.append((payload["log_fp"], payload["opts_fp"]))
        assert store.migrate("packed")["migrated_keys"] == 6
        assert len(store.keys()) == 6
        for log_fp, opts_fp in fps:
            assert store.load(log_fp, opts_fp) is not None
        assert store.migrate("json")["migrated_keys"] == 6
        assert len(store.entries()) == 6


class TestPackedStats:
    def test_per_table_accounting(self, tmp_path):
        payload = _mined()
        store = GraphStore(tmp_path)
        _save_all(store, payload)
        stats = store.stats()
        assert stats["format"] == "packed"
        assert stats["n_keys"] == 1
        assert stats["n_graphs"] == 1
        assert stats["n_widget_sets"] == 1
        assert stats["n_proof_sets"] == 1
        assert stats["n_diff_memos"] == 1
        assert sum(stats["bytes_by_table"].values()) == stats["total_bytes"]
        for table in ("graphs", "widget_sets", "proof_sets", "diff_memos"):
            entry = stats["tables"][table]
            assert entry["n_live"] == 1
            assert entry["n_tombstoned"] == 0
            assert 0 < entry["live_bytes"] <= entry["file_bytes"]
            assert entry["file_bytes"] == stats["bytes_by_table"][table]

    def test_tombstones_and_debt_reported(self, tmp_path):
        payload = _mined()
        store = GraphStore(tmp_path)
        _save_all(store, payload)
        store._segment("graphs").append_tombstones(
            [store.key(payload["log_fp"], payload["opts_fp"])]
        )
        entry = store.stats()["tables"]["graphs"]
        assert entry["n_live"] == 0
        assert entry["n_tombstoned"] == 1
        assert entry["compaction_debt_bytes"] > 0


class TestCompactApi:
    def test_compact_reclaims_debt_and_keeps_data(self, tmp_path):
        payload = _mined()
        store = GraphStore(tmp_path)
        _save_all(store, payload)
        store._segment("graphs").append_tombstones(
            [store.key(payload["log_fp"], payload["opts_fp"])]
        )
        before = store.stats()["tables"]["graphs"]
        assert before["compaction_debt_bytes"] > 0
        assert store.compact() is True
        after = store.stats()["tables"]["graphs"]
        assert after["compaction_debt_bytes"] == 0
        assert after["file_bytes"] < before["file_bytes"]
        # untouched tables kept their records through the rewrite
        assert store.stats()["n_widget_sets"] == 1

    def test_compact_on_clean_store_is_noop(self, tmp_path):
        payload = _mined()
        store = GraphStore(tmp_path)
        _save_all(store, payload)
        store.compact()  # first call may rewrite once
        assert store.compact() is False

    def test_compact_on_json_store_is_noop(self, tmp_path):
        store = GraphStore(tmp_path, format="json")
        assert store.compact() is False


class TestPackedEviction:
    def _fill(self, store, n):
        fps = []
        for i in range(n):
            payload = _mined(
                [f"SELECT a FROM t{i} WHERE x = {v}" for v in (1, 2)]
            )
            store.save(payload["log_fp"], payload["opts_fp"],
                       payload["graph"])
            fps.append((payload["log_fp"], payload["opts_fp"]))
            time.sleep(0.01)  # strictly increasing record timestamps
        return fps

    def test_max_entries_evicts_lru(self, tmp_path):
        store = GraphStore(tmp_path)
        fps = self._fill(store, 3)
        # touch the oldest key by loading it, then persist the recency
        assert store.load(*fps[0]) is not None
        store.flush_recency()
        assert store.prune(max_entries=2) == 1
        assert store.load(*fps[0]) is not None  # recently used: survived
        assert store.load(*fps[1]) is None  # LRU: evicted
        assert store.load(*fps[2]) is not None

    def test_eviction_takes_derived_tables_along(self, tmp_path):
        payload = _mined()
        store = GraphStore(tmp_path)
        _save_all(store, payload)
        assert store.prune(max_entries=0) == 1
        stats = store.stats()
        assert stats["n_keys"] == 0
        assert stats["n_widget_sets"] == 0
        assert stats["n_proof_sets"] == 0
        assert stats["n_diff_memos"] == 0
        assert store.load(payload["log_fp"], payload["opts_fp"]) is None

    def test_max_bytes_reclaims_space_on_disk(self, tmp_path):
        store = GraphStore(tmp_path)
        self._fill(store, 4)
        # densest layout first, so the halved cap can only be met by
        # genuinely evicting keys, not by reclaiming garbage
        store.compact()
        total = store.stats()["total_bytes"]
        removed = store.prune(max_bytes=total // 2)
        assert removed >= 1
        # eviction compacts: the cap holds for *file* bytes, not an
        # estimate — prune no longer leaves dead records behind
        assert store.stats()["total_bytes"] <= total // 2

    def test_save_enforces_caps_inline(self, tmp_path):
        store = GraphStore(tmp_path, max_entries=2)
        self._fill(store, 4)
        assert len(store.keys()) <= 2

    def test_invalidate_by_fingerprint(self, tmp_path):
        store = GraphStore(tmp_path)
        fps = self._fill(store, 2)
        assert store.invalidate(log_fingerprint=fps[0][0]) == 1
        assert store.load(*fps[0]) is None
        assert store.load(*fps[1]) is not None
        assert store.clear() == 1
        assert len(store) == 0

    def test_invalidate_table_drops_one_derived_table(self, tmp_path):
        payload = _mined()
        store = GraphStore(tmp_path)
        _save_all(store, payload)
        assert store.invalidate_table("widget_sets") == 1
        stats = store.stats()
        assert stats["n_widget_sets"] == 0
        assert stats["n_graphs"] == 1
        assert stats["n_diff_memos"] == 1
        with pytest.raises(ValueError):
            store.invalidate_table("graphs")


class TestPackedCorruption:
    def test_torn_segment_tail_never_crashes_the_store(self, tmp_path):
        payload = _mined()
        store = GraphStore(tmp_path)
        _save_all(store, payload)
        with open(tmp_path / "graphs.seg", "ab") as handle:
            handle.write(b"\x02torn-half-frame")
        fresh = GraphStore(tmp_path)
        assert fresh.load(payload["log_fp"], payload["opts_fp"]) is not None
        assert fresh.stats()["n_graphs"] == 1
        assert fresh.prune(max_entries=1) == 0

    def test_stomped_segment_is_a_miss_not_a_crash(self, tmp_path):
        payload = _mined()
        store = GraphStore(tmp_path)
        _save_all(store, payload)
        (tmp_path / "graphs.seg").write_bytes(b"\xde\xad\xbe\xef" * 100)
        fresh = GraphStore(tmp_path)
        assert fresh.load(payload["log_fp"], payload["opts_fp"]) is None
        assert fresh.stats()["n_graphs"] == 0
        # a new save rotates the stomped file aside and starts clean
        fresh.save(payload["log_fp"], payload["opts_fp"], payload["graph"])
        assert fresh.load(payload["log_fp"], payload["opts_fp"]) is not None

    def test_pipeline_survives_corrupt_cache(self, tmp_path):
        options = PipelineOptions(cache_dir=str(tmp_path))
        cold = generate(SQL, options=options)
        (tmp_path / "graphs.seg").write_bytes(b"junk")
        warm = generate(SQL, options=options)  # re-mines, doesn't crash
        assert warm.interface.widget_summary() == cold.interface.widget_summary()
