"""Widget-set cache: serialisation round-trips, the store's second table,
full-hit pipeline wiring, invalidation, and LRU eviction."""

import pytest

from repro.api import generate
from repro.cache import (
    GraphStore,
    load_widgets,
    log_fingerprint,
    options_fingerprint,
    save_widgets,
    widgets_from_dict,
    widgets_to_dict,
)
from repro.core.mapper import map_interactions
from repro.core.options import PipelineOptions
from repro.errors import CacheError
from repro.graph.build import build_interaction_graph
from repro.logs import SDSSLogGenerator
from repro.sqlparser.parser import parse_sql

SQL = [
    "SELECT a FROM t WHERE x = 1",
    "SELECT a FROM t WHERE x = 2",
    "SELECT a FROM t WHERE x = 5",
]


def summary(widgets):
    return [(w.widget_type.name, str(w.path), w.domain.size) for w in widgets]


@pytest.fixture()
def mined():
    asts = SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 40).asts()
    graph = build_interaction_graph(asts, window=2)
    options = PipelineOptions()
    widgets = map_interactions(graph.diffs, options.library, options.annotations)
    return asts, graph, options, widgets


class TestSerialisation:
    def test_round_trip_preserves_widgets_and_identity(self, mined, tmp_path):
        _asts, graph, options, widgets = mined
        path = tmp_path / "widgets.json"
        save_widgets(path, widgets, graph)
        loaded = load_widgets(path, graph, options.library, options.annotations)
        assert summary(loaded) == summary(widgets)
        # decoded widgets share diff-object identity with the graph — the
        # contract the merge phase and the session rely on
        table_ids = {id(d) for d in graph.diffs}
        assert all(id(d) in table_ids for w in loaded for d in w.D)

    def test_foreign_diff_rejected(self, mined):
        _asts, graph, _options, widgets = mined
        other = build_interaction_graph(
            [parse_sql(s) for s in SQL], window=2
        )
        with pytest.raises(CacheError, match="not in the graph's diffs table"):
            widgets_to_dict(widgets, other)

    def test_version_mismatch_rejected(self, mined):
        _asts, graph, options, widgets = mined
        payload = widgets_to_dict(widgets, graph)
        payload["version"] = 999
        with pytest.raises(CacheError, match="version"):
            widgets_from_dict(payload, graph, options.library, options.annotations)

    def test_out_of_range_reference_rejected(self, mined):
        _asts, graph, options, _widgets = mined
        payload = {
            "version": 1,
            "widgets": [{"type": "dropdown", "diffs": [len(graph.diffs) + 5]}],
        }
        with pytest.raises(CacheError, match="out of range"):
            widgets_from_dict(payload, graph, options.library, options.annotations)

    def test_stale_type_name_rejected(self, mined):
        """A payload recorded under a different library must not be
        half-trusted: re-picking a different type is a refusal."""
        _asts, graph, options, widgets = mined
        payload = widgets_to_dict(widgets, graph)
        payload["widgets"][0]["type"] = "definitely-not-a-widget"
        with pytest.raises(CacheError, match="expected type"):
            widgets_from_dict(payload, graph, options.library, options.annotations)


class TestStoreWidgetTable:
    def test_hit_miss_round_trip(self, mined, tmp_path):
        asts, graph, options, widgets = mined
        store = GraphStore(tmp_path)
        log_fp = log_fingerprint(asts)
        opts_fp = options_fingerprint(options)
        store.save(log_fp, opts_fp, graph)
        lib, ann = options.library, options.annotations
        assert store.load_widget_set(log_fp, opts_fp, graph, lib, ann) is None
        store.save_widget_set(log_fp, opts_fp, widgets, graph)
        loaded_graph, _ = store.load(log_fp, opts_fp)
        loaded = store.load_widget_set(log_fp, opts_fp, loaded_graph, lib, ann)
        assert loaded is not None
        assert summary(loaded) == summary(widgets)

    def test_corrupt_widget_entry_is_a_miss(self, mined, tmp_path):
        asts, graph, options, widgets = mined
        store = GraphStore(tmp_path, format="json")
        log_fp = log_fingerprint(asts)
        opts_fp = options_fingerprint(options)
        store.save_widget_set(log_fp, opts_fp, widgets, graph)
        store.widgets_path_for(log_fp, opts_fp).write_text("garbage\n")
        assert (
            store.load_widget_set(
                log_fp, opts_fp, graph, options.library, options.annotations
            )
            is None
        )

    def test_invalidate_removes_both_tables(self, mined, tmp_path):
        asts, graph, options, widgets = mined
        store = GraphStore(tmp_path, format="json")
        log_fp = log_fingerprint(asts)
        opts_fp = options_fingerprint(options)
        store.save(log_fp, opts_fp, graph)
        store.save_widget_set(log_fp, opts_fp, widgets, graph)
        assert store.stats()["n_files"] == 2
        assert store.invalidate(log_fingerprint=log_fp) == 1
        assert store.stats()["n_files"] == 0
        assert not store.widgets_path_for(log_fp, opts_fp).exists()


class TestFullHitPipeline:
    def test_full_hit_skips_mine_map_and_merge(self, tmp_path):
        """Acceptance: a full cache hit (graph + widget set) skips all
        three compute stages and does no pairwise diffing."""
        options = PipelineOptions(cache_dir=str(tmp_path))
        cold = generate(SQL, options=options)
        warm = generate(SQL, options=options)
        assert cold.run.stage("cache").stats["hit"] is False
        assert warm.run.stage("cache").stats["hit"] is True
        assert warm.run.stage("cache").stats["widgets_hit"] is True
        for stage in ("mine", "map", "merge"):
            assert warm.run.stage(stage).stats["skipped"] is True, stage
        assert warm.run.n_pairs_compared == 0
        assert warm.interface.widget_summary() == cold.interface.widget_summary()
        assert warm.interface.cost == pytest.approx(cold.interface.cost)

    def test_graph_hit_without_widgets_still_maps(self, tmp_path):
        """A graph-only hit (e.g. the widget entry was pruned) degrades
        gracefully: mine skips, map+merge run and repopulate the table."""
        options = PipelineOptions(cache_dir=str(tmp_path))
        cold = generate(SQL, options=options)
        store = GraphStore(tmp_path)
        # drop only the widget-set table, keep the graphs
        store.invalidate_table("widget_sets")
        half_warm = generate(SQL, options=options)
        assert half_warm.run.stage("cache").stats["widgets_hit"] is False
        assert half_warm.run.stage("mine").stats["skipped"] is True
        assert "skipped" not in half_warm.run.stage("map").stats
        assert "skipped" not in half_warm.run.stage("merge").stats
        assert (
            half_warm.interface.widget_summary()
            == cold.interface.widget_summary()
        )
        # ... and the third run full-hits again
        full_warm = generate(SQL, options=options)
        assert full_warm.run.stage("merge").stats["skipped"] is True

    def test_corrupt_widget_file_degrades_to_graph_hit(self, tmp_path):
        options = PipelineOptions(cache_dir=str(tmp_path))
        cold = generate(SQL, options=options)
        # stomp the whole widget-set segment with garbage
        (tmp_path / "widgets.seg").write_bytes(b"\x00garbage" * 64)
        warm = generate(SQL, options=options)
        assert warm.run.stage("cache").stats["widgets_hit"] is False
        assert warm.interface.widget_summary() == cold.interface.widget_summary()


class TestEviction:
    def _fill(self, store, n, base=0):
        for i in range(n):
            asts = [
                parse_sql(f"SELECT a FROM t WHERE x = {base + i}"),
                parse_sql(f"SELECT a FROM t WHERE x = {base + i + 1000}"),
            ]
            graph = build_interaction_graph(asts, window=2)
            store.save(
                log_fingerprint(asts),
                options_fingerprint(PipelineOptions()),
                graph,
            )

    def test_max_entries_evicts_lru(self, tmp_path):
        import os
        import time

        store = GraphStore(tmp_path, max_entries=3, format="json")
        self._fill(store, 3)
        entries = store.entries()
        assert len(entries) == 3
        # age the first two entries, then touch the oldest by loading it
        now = time.time()
        for index, path in enumerate(entries):
            os.utime(path, (now - 100 + index, now - 100 + index))
        survivor = entries[0]
        os.utime(survivor, (now, now))
        self._fill(store, 1, base=500)  # 4th key triggers eviction
        remaining = {p.name for p in store.entries()}
        assert len(remaining) == 3
        assert survivor.name in remaining  # recently-used key survived
        assert entries[1].name not in remaining  # LRU key evicted

    def test_max_bytes_evicts_until_under_cap(self, tmp_path):
        store = GraphStore(tmp_path)
        self._fill(store, 4)
        # densest layout first: otherwise compaction alone can satisfy
        # the halved cap and nothing needs evicting
        store.compact()
        total = store.stats()["total_bytes"]
        capped = GraphStore(tmp_path, max_bytes=total // 2)
        removed = capped.prune()
        assert removed >= 1
        assert capped.stats()["total_bytes"] <= total // 2

    def test_load_touches_recency(self, tmp_path):
        import os
        import time

        store = GraphStore(tmp_path, format="json")
        self._fill(store, 2)
        first, second = store.entries()
        past = time.time() - 1000
        os.utime(first, (past, past))
        os.utime(second, (past + 1, past + 1))
        key = first.name[: -len(".graph.jsonl")]
        log_part, _, opts_part = key.partition("-")
        assert store.load(log_part, opts_part) is not None
        assert first.stat().st_mtime > second.stat().st_mtime

    def test_prune_without_caps_is_noop(self, tmp_path):
        store = GraphStore(tmp_path)
        self._fill(store, 2)
        assert store.prune() == 0
        assert len(store) == 2

    def test_bad_caps_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            GraphStore(tmp_path, max_bytes=-1)
        with pytest.raises(ValueError):
            GraphStore(tmp_path, max_entries=-5)

    def test_negative_prune_caps_rejected(self, tmp_path):
        store = GraphStore(tmp_path)
        self._fill(store, 1)
        with pytest.raises(ValueError):
            store.prune(max_entries=-1)
        assert len(store) == 1  # nothing evicted
