"""Round-trip guarantees of the graph serialisation layer."""

import json

import pytest

from repro.cache.serialize import (
    FORMAT_VERSION,
    derived_interval_annotations,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    node_from_dict,
    node_to_dict,
    save_graph,
)
from repro.core.mapper import map_interactions
from repro.errors import CacheError
from repro.graph.build import BuildStats, build_interaction_graph
from repro.logs import SDSSLogGenerator
from repro.sqlparser.parser import parse_sql


@pytest.fixture(scope="module")
def mined():
    """A real mined graph (60 SDSS queries) plus its build stats."""
    asts = SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 60).asts()
    stats = BuildStats()
    graph = build_interaction_graph(asts, window=2, stats=stats)
    return graph, stats


class TestNodeRoundTrip:
    def test_parse_tree_round_trips(self):
        node = parse_sql("SELECT a, b FROM t WHERE x = 1 AND y = 'z' ORDER BY a")
        again = node_from_dict(node_to_dict(node))
        assert again.equals(node)

    def test_payload_is_json_serialisable(self):
        node = parse_sql("SELECT a FROM t WHERE x = 1")
        assert node_from_dict(json.loads(json.dumps(node_to_dict(node)))).equals(node)


class TestGraphRoundTrip:
    def test_summary_identical_via_dict(self, mined):
        graph, stats = mined
        loaded, loaded_stats, _ = graph_from_dict(graph_to_dict(graph, stats))
        assert loaded.summary() == graph.summary()
        assert loaded_stats.n_pairs_compared == stats.n_pairs_compared

    def test_summary_identical_via_file(self, mined, tmp_path):
        graph, stats = mined
        path = tmp_path / "graph.jsonl"
        save_graph(path, graph, stats)
        loaded, loaded_stats, _ = load_graph(path)
        assert loaded.summary() == graph.summary()
        assert loaded_stats.n_pairs_compared == stats.n_pairs_compared

    def test_regenerated_interface_identical(self, mined, tmp_path):
        """Acceptance: mapping the reloaded graph yields the same widgets
        as mapping the original — the diffs table and the edge/diff object
        identity both survive the round trip."""
        graph, stats = mined
        path = tmp_path / "graph.jsonl"
        save_graph(path, graph, stats)
        loaded, _, _ = load_graph(path)
        original = map_interactions(graph.diffs)
        regenerated = map_interactions(loaded.diffs)
        assert [
            (w.widget_type.name, str(w.path), w.domain.size) for w in regenerated
        ] == [(w.widget_type.name, str(w.path), w.domain.size) for w in original]
        assert sum(w.cost for w in regenerated) == pytest.approx(
            sum(w.cost for w in original)
        )

    def test_interval_annotations_rebuild_identically(self, mined, tmp_path):
        """Interval annotations are *derived* state: they are never
        persisted, so a loaded graph must yield byte-identical
        ``(pre, post, size)`` triples when the index is rebuilt from its
        diffs table — otherwise a resumed session's window signatures
        would not be comparable to the saving session's."""
        graph, stats = mined
        path = tmp_path / "graph.jsonl"
        save_graph(path, graph, stats)
        loaded, _, _ = load_graph(path)
        original = derived_interval_annotations(graph)
        rebuilt = derived_interval_annotations(loaded)
        assert rebuilt == original
        assert original, "fixture should mine at least one partition path"
        # and nothing interval-shaped leaked into the on-disk format
        with open(path) as handle:
            assert "pre_order" not in handle.read()

    def test_edges_reference_diff_table_objects(self, mined, tmp_path):
        """Edge.interaction must alias the diffs-table objects after a
        reload (the merge phase keys on object identity)."""
        graph, stats = mined
        path = tmp_path / "graph.jsonl"
        save_graph(path, graph, stats)
        loaded, _, _ = load_graph(path)
        table_ids = {id(d) for d in loaded.diffs}
        assert loaded.edges, "fixture should mine at least one edge"
        for edge in loaded.edges:
            for diff in edge.interaction:
                assert id(diff) in table_ids

    def test_extra_metadata_rides_along(self, mined, tmp_path):
        graph, stats = mined
        path = tmp_path / "graph.jsonl"
        save_graph(path, graph, stats, extra={"session": {"n_appends": 3}})
        _, _, extra = load_graph(path)
        assert extra == {"session": {"n_appends": 3}}


class TestVersioningAndCorruption:
    def test_version_mismatch_refused(self, mined, tmp_path):
        graph, stats = mined
        payload = graph_to_dict(graph, stats)
        payload["version"] = FORMAT_VERSION + 1
        with pytest.raises(CacheError, match="version"):
            graph_from_dict(payload)

    def test_truncated_file_refused(self, mined, tmp_path):
        graph, stats = mined
        path = tmp_path / "graph.jsonl"
        save_graph(path, graph, stats)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(CacheError, match="truncated"):
            load_graph(path)

    def test_non_header_first_line_refused(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"rec": "query", "node": {"t": "X"}}\n')
        with pytest.raises(CacheError, match="header"):
            load_graph(path)

    def test_bad_json_refused(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(CacheError, match="bad JSON"):
            load_graph(path)

    def test_negative_index_refused(self, mined):
        """A corrupt record's negative index must not silently alias the
        wrong table entry via Python's wrap-around indexing."""
        graph, stats = mined
        payload = graph_to_dict(graph, stats)
        payload["diffs"][0] = {**payload["diffs"][0], "t2": -1}
        with pytest.raises(CacheError, match="out of range"):
            graph_from_dict(payload)

    def test_bad_query_reference_refused(self, mined):
        graph, stats = mined
        payload = graph_to_dict(graph, stats)
        payload["queries"][0] = len(payload["trees"]) + 5
        with pytest.raises(CacheError, match="out of range"):
            graph_from_dict(payload)
