"""Segment framing and the append-only block store.

Exercises :mod:`repro.cache.format` round-trips and every
:class:`~repro.cache.blockstore.Segment` durability claim the packed
:class:`~repro.cache.store.GraphStore` layout rests on: torn tails,
flipped bytes, stale footers, foreign files, tombstone + touch replay,
and threshold compaction.  Corruption must always read as a *miss*,
never an exception.
"""

import zlib

import pytest

from repro.cache import format as segformat
from repro.cache.blockstore import Segment, SegmentReader
from repro.cache.lock import StoreLock


@pytest.fixture()
def lock(tmp_path):
    return StoreLock(tmp_path)


@pytest.fixture()
def segment(tmp_path, lock):
    return Segment(tmp_path / "graphs.seg", lock, "graphs")


class TestFraming:
    def test_uvarint_round_trip(self):
        for value in (0, 1, 127, 128, 300, 1 << 20, (1 << 63) - 1):
            encoded = segformat.encode_uvarint(value)
            decoded, end = segformat.decode_uvarint(encoded, 0)
            assert decoded == value and end == len(encoded)

    def test_truncated_uvarint_rejected(self):
        encoded = segformat.encode_uvarint(1 << 20)
        with pytest.raises(segformat.SegmentFormatError):
            segformat.decode_uvarint(encoded[:-1], 0)

    def test_record_round_trip(self):
        payload = b'{"hello": "world"}\n' * 10
        frame = segformat.encode_record("k1", payload, ts=12.5, level=6)
        kind, body, end = segformat.read_frame(frame, 0)
        assert kind == segformat.KIND_RECORD and end == len(frame)
        record = segformat.decode_record_body(body)
        assert record.key == "k1"
        assert record.ts == 12.5
        assert segformat.decompress_record(record) == payload

    def test_level_zero_round_trips(self):
        payload = b"x" * 100
        frame = segformat.encode_record("k", payload, ts=0.0, level=0)
        _, body, _ = segformat.read_frame(frame, 0)
        record = segformat.decode_record_body(body)
        assert record.raw_len == 100
        assert segformat.decompress_record(record) == payload

    def test_crc_rejects_flipped_byte(self):
        frame = bytearray(
            segformat.encode_record("k", b"payload", ts=0.0, level=6)
        )
        frame[7] ^= 0xFF
        with pytest.raises(segformat.SegmentFormatError):
            segformat.read_frame(bytes(frame), 0)

    def test_declared_length_cannot_overrun(self):
        frame = segformat.encode_record("k", b"payload", ts=0.0, level=6)
        with pytest.raises(segformat.SegmentFormatError):
            segformat.read_frame(frame[: len(frame) - 3], 0)

    def test_footer_round_trip_requires_sorted_keys(self):
        entries = [
            segformat.IndexEntry("a", 16, 40, 1.0),
            segformat.IndexEntry("b", 56, 44, 2.0),
        ]
        frame = segformat.encode_footer(entries, n_tombstone_frames=1, level=6)
        _, body, _ = segformat.read_frame(frame, 0)
        footer = segformat.decode_footer_body(body)
        assert footer.entries == entries
        assert footer.n_tombstone_frames == 1
        with pytest.raises(segformat.SegmentFormatError):
            segformat.decode_footer_body(
                segformat.read_frame(
                    segformat.encode_footer(list(reversed(entries)), 0, 6), 0
                )[1]
            )

    def test_trailer_is_fixed_length(self):
        frame = segformat.encode_trailer(100, 50, 150)
        assert len(frame) == segformat.TRAILER_FRAME_LEN
        _, body, _ = segformat.read_frame(frame, 0)
        trailer = segformat.decode_trailer_body(body)
        assert (trailer.footer_offset, trailer.footer_frame_len,
                trailer.covered_len) == (100, 50, 150)

    def test_header_round_trip(self):
        header = segformat.encode_header("graphs", level=6, payload_format=1)
        assert header.startswith(segformat.SEGMENT_MAGIC)
        meta, end = segformat.read_header(header)
        assert end == len(header)
        assert meta["table"] == "graphs"

    def test_bad_magic_rejected(self):
        with pytest.raises(segformat.SegmentFormatError):
            segformat.read_header(b"NOTMAGIC" + b"\x00" * 64)


class TestSegmentBasics:
    def test_append_get_round_trip(self, segment):
        segment.append_records([("k1", b"one", None), ("k2", b"two", None)])
        assert segment.get("k1") == b"one"
        assert segment.get("k2") == b"two"
        assert segment.get("k3") is None
        assert segment.reader().keys() == ["k1", "k2"]

    def test_fresh_reader_sees_all_records(self, tmp_path, segment, lock):
        segment.append_records([("k1", b"one", None)])
        segment.append_records([("k2", b"two", None)])
        reader = SegmentReader(tmp_path / "graphs.seg")
        assert reader.get("k1") == b"one"
        assert reader.get("k2") == b"two"
        assert not reader.foreign

    def test_rewrite_shadows_old_record(self, segment):
        segment.append_records([("k1", b"old", None)])
        segment.append_records([("k1", b"new", None)])
        assert segment.get("k1") == b"new"
        assert segment.stats().n_live == 1

    def test_identical_payload_demoted_to_touch(self, segment):
        segment.append_records([("k1", b"same", None)])
        size_once = segment.reader().size
        segment.append_records([("k1", b"same", None)])
        reader = segment.reader()
        assert reader.get("k1") == b"same"
        # a touch marker + fresh trailer is far smaller than a re-encoded
        # record
        assert reader.size - size_once < 80
        assert reader.stats().n_live == 1

    def test_tombstone_hides_record(self, segment):
        segment.append_records([("k1", b"one", None), ("k2", b"two", None)])
        segment.append_tombstones(["k1"])
        assert segment.get("k1") is None
        assert segment.get("k2") == b"two"
        assert segment.reader().keys() == ["k2"]

    def test_touch_bumps_recency(self, segment):
        segment.append_records([("k1", b"one", 100.0), ("k2", b"two", 200.0)])
        segment.append_touches(["k1"])
        index = segment.reader().index()
        assert index["k1"].ts > index["k2"].ts

    def test_missing_file_is_empty(self, tmp_path):
        reader = SegmentReader(tmp_path / "absent.seg")
        assert reader.keys() == []
        assert reader.get("k") is None
        assert reader.stats().file_bytes == 0

    def test_items_parallel_decode(self, segment):
        records = [(f"k{i:03d}", f"payload-{i}".encode() * 50, None)
                   for i in range(40)]
        segment.append_records(records)
        decoded = dict(segment.reader().items(parallel=4))
        assert decoded == {key: payload for key, payload, _ in records}


class TestCorruption:
    def _bulk(self, segment, n=8):
        segment.append_records(
            [(f"k{i:02d}", f"payload-{i}".encode() * 20, None)
             for i in range(n)]
        )

    def test_torn_tail_keeps_committed_records(self, tmp_path, segment):
        """A crash mid-append leaves a torn frame; every record committed
        before it still reads."""
        self._bulk(segment)
        path = tmp_path / "graphs.seg"
        with open(path, "ab") as handle:
            handle.write(b"\x02\xff\xff")  # torn record header
        reader = SegmentReader(path)
        for i in range(8):
            assert reader.get(f"k{i:02d}") is not None

    def test_append_after_torn_tail_is_readable(self, tmp_path, segment):
        self._bulk(segment)
        with open(tmp_path / "graphs.seg", "ab") as handle:
            handle.write(b"\x02garbage-that-is-not-a-frame")
        segment.append_records([("knew", b"after-the-crash", None)])
        reader = SegmentReader(tmp_path / "graphs.seg")
        assert reader.get("knew") == b"after-the-crash"
        assert reader.get("k00") is not None

    def test_flipped_byte_is_a_miss_for_that_key_only(self, tmp_path, segment):
        self._bulk(segment, n=4)
        reader = segment.reader()
        victim = reader.entry("k01")
        data = bytearray((tmp_path / "graphs.seg").read_bytes())
        # flip one byte inside the victim's compressed payload
        data[victim.offset + 30] ^= 0xFF
        (tmp_path / "graphs.seg").write_bytes(bytes(data))
        fresh = SegmentReader(tmp_path / "graphs.seg")
        assert fresh.get("k01") is None
        assert fresh.get("k00") is not None
        assert fresh.get("k02") is not None

    def test_corrupt_trailer_falls_back_to_scan(self, tmp_path, segment):
        self._bulk(segment)
        path = tmp_path / "graphs.seg"
        data = bytearray(path.read_bytes())
        for i in range(1, segformat.TRAILER_FRAME_LEN + 1):
            data[-i] ^= 0xFF
        path.write_bytes(bytes(data))
        reader = SegmentReader(path)
        assert reader.used_scan
        for i in range(8):
            assert reader.get(f"k{i:02d}") is not None

    def test_corrupt_header_reads_as_empty_and_write_rotates(
        self, tmp_path, segment
    ):
        path = tmp_path / "graphs.seg"
        path.write_bytes(b"\x00not-a-segment" * 16)
        reader = SegmentReader(path)
        assert reader.foreign and reader.keys() == []
        segment.invalidate_reader()
        segment.append_records([("k1", b"fresh", None)])
        assert segment.get("k1") == b"fresh"
        assert (tmp_path / "graphs.seg.corrupt").exists()

    def test_items_skips_corrupt_records(self, tmp_path, segment):
        self._bulk(segment, n=4)
        victim = segment.reader().entry("k02")
        data = bytearray((tmp_path / "graphs.seg").read_bytes())
        data[victim.offset + 25] ^= 0xFF
        (tmp_path / "graphs.seg").write_bytes(bytes(data))
        decoded = dict(SegmentReader(tmp_path / "graphs.seg").items())
        assert "k02" not in decoded
        assert len(decoded) == 3


class TestCompaction:
    def test_compact_drops_dead_bytes(self, segment):
        big = zlib.compress(b"x" * 10_000)  # incompressible-ish payloads
        for i in range(12):
            segment.append_records([(f"k{i}", big + bytes([i]), None)])
        segment.append_tombstones([f"k{i}" for i in range(10)])
        before = segment.stats()
        assert before.dead_bytes > 0
        assert segment.compact()
        after = segment.stats()
        assert after.dead_bytes == 0
        assert after.n_live == 2
        assert after.file_bytes < before.file_bytes
        assert segment.get("k10") == big + bytes([10])
        assert segment.get("k11") == big + bytes([11])

    def test_compact_on_clean_segment_is_noop(self, segment):
        segment.append_records([("k1", b"one", None)])
        segment.compact()  # settle any footer bookkeeping
        assert segment.compact() is False

    def test_inline_compaction_triggers_past_threshold(self, tmp_path, lock):
        segment = Segment(
            tmp_path / "graphs.seg", lock, "graphs",
            compact_min_bytes=1_000, compact_ratio=0.5,
        )
        import random

        payload = random.Random(0).randbytes(5_000)  # incompressible
        segment.append_records([("k1", payload, None), ("k2", b"tiny", None)])
        segment.append_tombstones(["k1"])
        # the tombstoned record dominates the file, so the write path
        # compacts inline: the 5 kB corpse is reclaimed (all that may
        # remain dead is a superseded 37-byte trailer from later appends)
        segment.append_records([("k3", b"small", None)])
        stats = segment.stats()
        assert stats.dead_bytes <= 2 * segformat.TRAILER_FRAME_LEN
        assert stats.file_bytes < 1_000
        assert sorted(segment.reader().keys()) == ["k2", "k3"]

    def test_compacted_segment_readable_by_fresh_reader(self, tmp_path, segment):
        for i in range(6):
            segment.append_records([(f"k{i}", f"v{i}".encode() * 30, None)])
        segment.append_tombstones(["k0", "k1"])
        segment.compact()
        reader = SegmentReader(tmp_path / "graphs.seg")
        assert not reader.used_scan  # compaction wrote a fresh footer
        assert reader.keys() == ["k2", "k3", "k4", "k5"]
        assert reader.get("k3") == b"v3" * 30


class TestBlocks:
    """BLOCK frames: many records per zlib stream, written by bulk
    appends and compaction so warm loads decompress once per ~64
    records instead of once per record."""

    def test_block_round_trip(self):
        records = [(f"k{i:03d}", f"payload-{i}".encode() * 7, float(i)) for i in range(10)]
        frame = segformat.encode_block(records, level=6)
        kind, body, _ = segformat.read_frame(frame, 0)
        assert kind == segformat.KIND_BLOCK
        block = segformat.decode_block_body(body)
        assert block.keys == [k for k, _, _ in records]
        assert list(block.tss) == [ts for _, _, ts in records]
        assert block.payloads == [p for _, p, _ in records]

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            segformat.encode_block([], level=6)

    def test_corrupt_block_body_rejected(self):
        frame = segformat.encode_block([("k", b"x" * 50, 1.0)], level=6)
        _, body, _ = segformat.read_frame(frame, 0)
        # truncating the compressed stream must fail cleanly, not crash
        with pytest.raises(segformat.SegmentFormatError):
            segformat.decode_block_body(body[: len(body) // 2])

    def test_footer_round_trips_block_slots(self):
        entries = [
            segformat.IndexEntry("a", 16, 200, 1.0, slot=0),
            segformat.IndexEntry("b", 16, 200, 2.0, slot=1),
            segformat.IndexEntry("c", 216, 40, 3.0),  # standalone record
        ]
        frame = segformat.encode_footer(entries, n_tombstone_frames=0, level=6)
        footer = segformat.decode_footer_body(segformat.read_frame(frame, 0)[1])
        assert footer.entries == entries

    def test_bulk_append_writes_block_frames(self, segment):
        from repro.cache.blockstore import BLOCK_MIN_BATCH

        batch = [
            (f"k{i:03d}", f"v{i}".encode() * 10, None)
            for i in range(BLOCK_MIN_BATCH)
        ]
        segment.append_records(batch)
        index = segment.reader().index()
        assert all(entry.slot >= 0 for entry in index.values())
        # one shared frame: every entry points at the same offset
        assert len({entry.offset for entry in index.values()}) == 1
        for key, payload, _ in batch:
            assert segment.get(key) == payload

    def test_small_append_stays_per_record(self, segment):
        segment.append_records([("a", b"x" * 40, None), ("b", b"y" * 40, None)])
        index = segment.reader().index()
        assert all(entry.slot == -1 for entry in index.values())

    def test_bulk_append_dedupes_last_write_wins(self, segment):
        from repro.cache.blockstore import BLOCK_MIN_BATCH

        batch = [
            (f"k{i:03d}", b"old" * 10, None) for i in range(BLOCK_MIN_BATCH)
        ]
        batch.append(("k000", b"new" * 10, None))
        segment.append_records(batch)
        assert segment.get("k000") == b"new" * 10

    def test_compaction_blockifies_single_records(self, tmp_path, segment):
        for i in range(20):
            segment.append_records([(f"k{i:02d}", f"v{i}".encode() * 20, None)])
        assert segment.compact() is True
        reader = SegmentReader(tmp_path / "graphs.seg")
        index = reader.index()
        assert len(index) == 20
        assert all(entry.slot >= 0 for entry in index.values())
        for i in range(20):
            assert reader.get(f"k{i:02d}") == f"v{i}".encode() * 20

    def test_corrupt_block_is_a_miss_for_its_records_only(self, tmp_path, segment):
        from repro.cache.blockstore import BLOCK_RECORDS

        n = BLOCK_RECORDS + 16  # two blocks
        segment.append_records(
            [(f"k{i:03d}", f"v{i}".encode() * 10, None) for i in range(n)]
        )
        path = tmp_path / "graphs.seg"
        index = SegmentReader(path).index()
        offsets = sorted({entry.offset for entry in index.values()})
        assert len(offsets) == 2
        first, second = offsets
        data = bytearray(path.read_bytes())
        mid = first + (second - first) // 2  # inside the first block's body
        data[mid] ^= 0xFF
        path.write_bytes(bytes(data))
        reader = SegmentReader(path)
        hits = misses = 0
        for key, entry in index.items():
            value = reader.get(key)
            if entry.offset == first:
                assert value is None
                misses += 1
            else:
                assert value == f"v{int(key[1:]):d}".encode() * 10
                hits += 1
        assert misses == BLOCK_RECORDS and hits == 16

    def test_entry_cost_is_fair_share_of_block(self, segment):
        from repro.cache.blockstore import BLOCK_MIN_BATCH

        segment.append_records(
            [(f"k{i:03d}", b"x" * 100, None) for i in range(BLOCK_MIN_BATCH)]
        )
        reader = segment.reader()
        index = reader.index()
        entry = index["k000"]
        assert entry.slot >= 0
        cost = reader.entry_cost(entry)
        assert cost == entry.frame_len // BLOCK_MIN_BATCH
        # shares sum back to roughly the frame (integer division remainder)
        total = sum(reader.entry_cost(e) for e in index.values())
        assert entry.frame_len - BLOCK_MIN_BATCH < total <= entry.frame_len

    def test_seeded_reader_matches_cold_reader(self, tmp_path, segment):
        """The writer-state seeded reader and a cold footer decode must
        agree exactly — index, accounting, and payloads."""
        segment.append_records(
            [(f"k{i:03d}", f"v{i}".encode() * 15, None) for i in range(40)]
        )
        segment.append_tombstones(["k001", "k002"])
        segment.append_records([("k000", b"rewritten" * 5, None)])
        seeded = segment.reader()
        cold = SegmentReader(tmp_path / "graphs.seg")
        assert seeded.index() == cold.index()
        assert seeded.live_frame_bytes == cold.live_frame_bytes
        assert seeded._block_refs == cold._block_refs
        assert dict(seeded.items()) == dict(cold.items())
