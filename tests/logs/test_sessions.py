"""Session segmentation tests (the Section 3.3 preprocessing)."""

import pytest

from repro.errors import LogError
from repro.logs import QueryLog
from repro.logs.sessions import cluster_analyses, segment_log, split_by_distance

ANALYSIS_A = [
    "SELECT * FROM SpecLineIndex WHERE specObjId = 0x10",
    "SELECT * FROM SpecLineIndex WHERE specObjId = 0x20",
    "SELECT * FROM SpecLineIndex WHERE specObjId = 0x30",
]
ANALYSIS_B = [
    "SELECT DestState, COUNT(Delay) FROM ontime WHERE Month = 1 GROUP BY DestState",
    "SELECT DestState, COUNT(Delay) FROM ontime WHERE Month = 2 GROUP BY DestState",
]


class TestSplit:
    def test_homogeneous_log_is_one_segment(self):
        log = QueryLog.from_statements(ANALYSIS_A)
        assert len(split_by_distance(log)) == 1

    def test_structural_jump_cuts(self):
        log = QueryLog.from_statements(ANALYSIS_A + ANALYSIS_B)
        segments = split_by_distance(log)
        assert len(segments) == 2
        assert segments[0].statements() == ANALYSIS_A

    def test_empty_log_raises(self):
        with pytest.raises(LogError):
            split_by_distance(QueryLog())

    def test_bad_threshold_raises(self):
        with pytest.raises(LogError):
            split_by_distance(QueryLog.from_statements(ANALYSIS_A), threshold=0.0)


class TestCluster:
    def test_interleaved_bursts_regroup(self):
        log = QueryLog.from_statements(
            ANALYSIS_A[:2] + ANALYSIS_B + ANALYSIS_A[2:]
        )
        analyses = segment_log(log)
        assert len(analyses) == 2
        lengths = sorted(len(a) for a in analyses)
        assert lengths == [2, 3]

    def test_cluster_order_is_first_appearance(self):
        log = QueryLog.from_statements(ANALYSIS_A[:1] + ANALYSIS_B + ANALYSIS_A[1:])
        analyses = segment_log(log)
        assert analyses[0].statements()[0] == ANALYSIS_A[0]

    def test_no_segments_raises(self):
        with pytest.raises(LogError):
            cluster_analyses([])

    def test_segmented_analyses_mine_cleanly(self):
        """End-to-end: segmentation turns a mixed log into per-analysis
        logs whose interfaces fully express their own queries."""
        from repro import parse_sql

        log = QueryLog.from_statements(ANALYSIS_A + ANALYSIS_B + ANALYSIS_A)
        for analysis in segment_log(log):
            asts = [parse_sql(s) for s in analysis.statements()]
            from repro import generate

            interface = generate(asts).interface
            assert interface.expressiveness(asts) == 1.0
