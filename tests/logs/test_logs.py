"""Query log model, IO, and generator tests."""

import pytest

from repro.errors import LogError
from repro.logs import (
    AdhocLogGenerator,
    OLAPLogGenerator,
    PROFILE_NAMES,
    QueryLog,
    SDSSLogGenerator,
    load_jsonl,
    load_text,
    save_jsonl,
    save_text,
)
from repro.sqlparser import parse_sql


class TestModel:
    def test_from_statements(self, tiny_log):
        assert len(tiny_log) == 3
        assert tiny_log.entries[2].sequence == 2

    def test_asts_parse(self, tiny_log):
        assert len(tiny_log.asts()) == 3

    def test_by_client(self):
        log = QueryLog.from_statements(["SELECT a"], client="c1")
        log.entries.extend(
            QueryLog.from_statements(["SELECT b"], client="c2").entries
        )
        split = log.by_client()
        assert set(split) == {"c1", "c2"}

    def test_windows(self):
        log = QueryLog.from_statements([f"SELECT c{i}" for i in range(10)])
        windows = log.windows(4)
        assert len(windows) == 2
        assert windows[1].entries[0].sql == "SELECT c4"

    def test_windows_bad_size(self, tiny_log):
        with pytest.raises(LogError):
            tiny_log.windows(0)

    def test_truncate_and_slice(self, tiny_log):
        assert len(tiny_log.truncate(2)) == 2
        assert len(tiny_log.slice(1, 3)) == 2

    def test_interleave_round_robin(self):
        a = QueryLog.from_statements(["SELECT a1", "SELECT a2"], client="a")
        b = QueryLog.from_statements(["SELECT b1", "SELECT b2"], client="b")
        mixed = QueryLog.interleave([a, b], chunk=1)
        assert [e.client for e in mixed.entries] == ["a", "b", "a", "b"]
        assert [e.sequence for e in mixed.entries] == [0, 1, 2, 3]

    def test_interleave_chunked_bursts(self):
        a = QueryLog.from_statements([f"SELECT a{i}" for i in range(4)], client="a")
        b = QueryLog.from_statements([f"SELECT b{i}" for i in range(4)], client="b")
        mixed = QueryLog.interleave([a, b], chunk=2)
        assert [e.client for e in mixed.entries] == list("aabbaabb")

    def test_interleave_empty_raises(self):
        with pytest.raises(LogError):
            QueryLog.interleave([])

    def test_interleave_bad_chunk_raises(self):
        a = QueryLog.from_statements(["SELECT a"])
        with pytest.raises(LogError):
            QueryLog.interleave([a], chunk=0)

    def test_clients_in_first_appearance_order(self):
        a = QueryLog.from_statements(["SELECT a"], client="z")
        a.entries.extend(QueryLog.from_statements(["SELECT b"], client="a").entries)
        assert a.clients == ["z", "a"]


class TestIO:
    def test_text_roundtrip(self, tiny_log, tmp_path):
        path = tmp_path / "log.sql"
        save_text(tiny_log, path)
        loaded = load_text(path)
        assert loaded.statements() == tiny_log.statements()

    def test_text_skips_comments(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text("-- header\nSELECT a\n\nSELECT b\n")
        assert load_text(path).statements() == ["SELECT a", "SELECT b"]

    def test_text_empty_raises(self, tmp_path):
        path = tmp_path / "empty.sql"
        path.write_text("-- nothing\n")
        with pytest.raises(LogError):
            load_text(path)

    def test_jsonl_roundtrip(self, tiny_log, tmp_path):
        path = tmp_path / "log.jsonl"
        save_jsonl(tiny_log, path)
        loaded = load_jsonl(path)
        assert loaded.statements() == tiny_log.statements()
        assert loaded.entries[1].client == tiny_log.entries[1].client

    def test_jsonl_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(LogError):
            load_jsonl(path)


class TestSDSSGenerator:
    def test_deterministic(self):
        a = SDSSLogGenerator(seed=1).client_log("C1", "object_lookup", 50)
        b = SDSSLogGenerator(seed=1).client_log("C1", "object_lookup", 50)
        assert a.statements() == b.statements()

    def test_all_profiles_parse(self):
        gen = SDSSLogGenerator(seed=0)
        for profile in PROFILE_NAMES:
            log = gen.client_log("CX", profile, 30)
            assert len(log.asts()) == 30

    def test_unknown_profile_raises(self):
        with pytest.raises(LogError):
            SDSSLogGenerator().client_log("C1", "moon_landing", 10)

    def test_bad_length_raises(self):
        with pytest.raises(LogError):
            SDSSLogGenerator().client_log("C1", "object_lookup", 0)

    def test_clients_cycle_profiles(self):
        clients = SDSSLogGenerator(seed=0).clients(10, n_queries=5)
        assert len(clients) == 10

    def test_interleaved_renumbers(self):
        mixed = SDSSLogGenerator(seed=0).interleaved(3, n_queries=5)
        assert [e.sequence for e in mixed.entries] == list(range(15))

    def test_full_log_size(self):
        log = SDSSLogGenerator(seed=0).full_log(100)
        assert len(log) == 100

    def test_object_lookup_shape(self):
        """Listing 1 shape: SELECT * FROM <table> WHERE <field> = <hex>."""
        log = SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 20)
        for ast in log.asts():
            assert ast.children[0].children[0].children[0].node_type == "StarExpr"
            assert ast.children[1].children[0].node_type == "TableRef"


class TestOLAPGenerator:
    def test_walk_changes_one_aspect_per_step(self):
        from repro.treediff import extract_diffs

        log = OLAPLogGenerator(seed=5).generate(30)
        asts = log.asts()
        for left, right in zip(asts, asts[1:]):
            leaf = [d for d in extract_diffs(left, right) if d.is_leaf]
            # one state mutation touches at most a few leaf positions
            # (a dimension change touches Project and GroupBy)
            assert 1 <= len(leaf) <= 4

    def test_every_query_has_group_by(self):
        log = OLAPLogGenerator(seed=5).generate(30)
        for ast in log.asts():
            assert any(c.node_type == "GroupBy" for c in ast.children)

    def test_bad_length_raises(self):
        with pytest.raises(LogError):
            OLAPLogGenerator().generate(0)


class TestAdhocGenerator:
    def test_parses(self):
        log = AdhocLogGenerator(seed=3).student_log("S1", 60)
        assert len(log.asts()) == 60

    def test_students_distinct(self):
        gen = AdhocLogGenerator(seed=3)
        logs = gen.students(2, n_queries=30)
        assert logs["S1"].statements() != logs["S2"].statements()

    def test_structural_variety_exceeds_olap(self):
        """The ad-hoc log has many more distinct query skeletons than the
        OLAP walk — that is why its recall plateaus (Figure 6c)."""
        def skeletons(log):
            out = set()
            for ast in log.asts():
                out.add(tuple(c.node_type for c in ast.children))
            return out

        adhoc = AdhocLogGenerator(seed=3).student_log("S1", 100)
        olap = OLAPLogGenerator(seed=3).generate(100)
        assert len(skeletons(adhoc)) >= len(skeletons(olap))
