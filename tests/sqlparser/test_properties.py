"""Property-based tests for the parser substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paths import Path
from repro.sqlparser import parse_sql, render_sql
from tests.strategies import scalar_exprs, select_statements


@settings(max_examples=150, deadline=None)
@given(select_statements())
def test_render_parse_roundtrip(ast):
    """Any AST the strategy builds survives render -> parse unchanged."""
    assert parse_sql(render_sql(ast)) == ast


@settings(max_examples=100, deadline=None)
@given(select_statements())
def test_double_roundtrip_fixpoint(ast):
    """Rendering is a fixpoint: render(parse(render(x))) == render(x)."""
    once = render_sql(ast)
    assert render_sql(parse_sql(once)) == once


@settings(max_examples=100, deadline=None)
@given(select_statements())
def test_fingerprint_consistency(ast):
    """Structurally equal trees have equal fingerprints."""
    clone = parse_sql(render_sql(ast))
    assert clone.fingerprint == ast.fingerprint


@settings(max_examples=100, deadline=None)
@given(select_statements())
def test_walk_paths_resolve(ast):
    for path, node in ast.walk_with_paths():
        assert ast.get(path).equals(node)


@settings(max_examples=100, deadline=None)
@given(select_statements(), select_statements())
def test_replace_at_every_path_keeps_tree_valid(a, b):
    """Replacing any subtree of a with the root of b yields a tree whose
    size identity holds (persistent edit correctness)."""
    paths = [p for p, _ in a.walk_with_paths()]
    target = paths[len(paths) // 2]
    edited = a.replace_at(target, b)
    assert edited.get(target).equals(b)
    expected = a.size - a.get(target).size + b.size
    assert edited.size == expected


@settings(max_examples=150, deadline=None)
@given(scalar_exprs())
def test_scalar_expression_roundtrip(expr):
    """Scalar expressions round-trip inside a SELECT wrapper."""
    from repro.sqlparser.astnodes import Node

    ast = Node(
        "SelectStmt", {}, [Node("Project", {}, [Node("ProjClause", {}, [expr])])]
    )
    assert parse_sql(render_sql(ast)) == ast


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9), max_size=6))
def test_path_parse_str_roundtrip(steps):
    path = Path(tuple(steps))
    assert Path.parse(str(path)) == path
