"""Grammar annotation tests."""

import pytest

from repro.errors import GrammarError
from repro.sqlparser import Node, parse_sql
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations


class TestKinds:
    def test_numeric_literal(self):
        assert SQL_ANNOTATIONS.kind_of(Node("NumExpr", {"value": 5})) == "num"

    def test_hex_is_numeric(self):
        assert SQL_ANNOTATIONS.kind_of(Node("HexExpr", {"value": 16, "text": "0x10"})) == "num"

    def test_string_literal(self):
        assert SQL_ANNOTATIONS.kind_of(Node("StrExpr", {"value": "x"})) == "str"

    def test_column_ref_is_str(self):
        """Table 1 types the ColExpr(sales)->ColExpr(costs) change 'str'."""
        assert SQL_ANNOTATIONS.kind_of(Node("ColExpr", {"name": "sales"})) == "str"

    def test_tree_kind_for_composites(self):
        ast = parse_sql("SELECT a FROM t")
        assert SQL_ANNOTATIONS.kind_of(ast) == "tree"

    def test_literal_type_with_children_is_tree(self):
        fake = Node("NumExpr", {"value": 1}, [Node("NumExpr", {"value": 2})])
        assert SQL_ANNOTATIONS.kind_of(fake) == "tree"


class TestValues:
    def test_literal_value_lookup(self):
        assert SQL_ANNOTATIONS.literal_value(Node("ColExpr", {"name": "ra"})) == "ra"

    def test_numeric_value(self):
        assert SQL_ANNOTATIONS.numeric_value(Node("NumExpr", {"value": 2.5})) == 2.5

    def test_numeric_value_of_hex(self):
        node = Node("HexExpr", {"value": 0x400, "text": "0x400"})
        assert SQL_ANNOTATIONS.numeric_value(node) == 1024.0

    def test_numeric_value_of_string_raises(self):
        with pytest.raises(GrammarError):
            SQL_ANNOTATIONS.numeric_value(Node("StrExpr", {"value": "x"}))

    def test_literal_value_of_tree_raises(self):
        with pytest.raises(GrammarError):
            SQL_ANNOTATIONS.literal_value(parse_sql("SELECT a"))

    def test_missing_value_attribute_raises(self):
        with pytest.raises(GrammarError):
            SQL_ANNOTATIONS.literal_value(Node("NumExpr"))


class TestRegistry:
    def test_collections_registered(self):
        for node_type in ("Project", "From", "GroupBy", "OrderBy", "AndExpr"):
            assert SQL_ANNOTATIONS.is_collection(node_type)

    def test_statements_registered(self):
        assert SQL_ANNOTATIONS.is_statement("SelectStmt")
        assert not SQL_ANNOTATIONS.is_statement("BiExpr")

    def test_conflicting_registration_rejected(self):
        with pytest.raises(GrammarError):
            GrammarAnnotations(
                literal_types={"X": "num"},
                collection_types=frozenset({"X"}),
            )

    def test_bad_kind_rejected(self):
        with pytest.raises(GrammarError):
            GrammarAnnotations(literal_types={"X": "banana"})
