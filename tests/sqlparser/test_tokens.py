"""Lexer unit tests."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlparser.tokens import TokenKind, tokenize


def kinds(sql):
    return [t.kind for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select From wHeRe")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_identifier_case_preserved(self):
        assert values("SpecLineIndex") == ["SpecLineIndex"]

    def test_identifier_with_underscore_and_digits(self):
        assert values("spec_ts2") == ["spec_ts2"]
        assert kinds("spec_ts2") == [TokenKind.IDENT]

    def test_eof_always_terminates(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("a")[-1].kind is TokenKind.EOF

    def test_punctuation(self):
        assert kinds("(),;.") == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.COMMA,
            TokenKind.SEMICOLON,
            TokenKind.DOT,
        ]

    def test_star_token(self):
        assert kinds("*") == [TokenKind.STAR]

    def test_position_offsets(self):
        tokens = tokenize("ab  cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 4


class TestStrings:
    def test_simple_string(self):
        tokens = tokenize("'USA'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].value == "USA"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")


class TestNumbers:
    def test_integer(self):
        assert tokenize("42")[0].kind is TokenKind.NUMBER

    def test_decimal(self):
        assert tokenize("2.0616")[0].value == "2.0616"

    def test_leading_dot(self):
        assert tokenize(".5")[0].value == ".5"

    def test_scientific(self):
        assert tokenize("1.5e-3")[0].value == "1.5e-3"

    def test_hex_literal(self):
        token = tokenize("0x400")[0]
        assert token.kind is TokenKind.HEXNUMBER
        assert token.value == "0x400"

    def test_hex_uppercase_digits(self):
        assert tokenize("0x4FEF")[0].kind is TokenKind.HEXNUMBER

    def test_malformed_hex_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("0x")

    def test_number_adjacent_to_keyword(self):
        assert values("TOP 10") == ["TOP", "10"]


class TestOperators:
    @pytest.mark.parametrize("op", ["<>", "!=", ">=", "<=", "||"])
    def test_multichar_operator(self, op):
        token = tokenize(op)[0]
        assert token.kind is TokenKind.OPERATOR
        assert token.value == op

    @pytest.mark.parametrize("op", list("+-/%=<>"))
    def test_single_char_operator(self, op):
        assert tokenize(op)[0].value == op

    def test_maximal_munch(self):
        assert values("a<=b") == ["a", "<=", "b"]


class TestCommentsAndQuoting:
    def test_line_comment_skipped(self):
        assert values("a -- comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("a /* never closed")

    def test_double_quoted_identifier(self):
        token = tokenize('"Weird Name"')[0]
        assert token.kind is TokenKind.IDENT
        assert token.value == "Weird Name"

    def test_bracket_quoted_identifier(self):
        assert tokenize("[My Col]")[0].value == "My Col"

    def test_backtick_identifier(self):
        assert tokenize("`col`")[0].value == "col"

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("a ? b")
