"""Parser unit tests: node shapes for every supported construct."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlparser import parse_sql
from repro.treediff.paths import Path


def clause_types(sql):
    return [c.node_type for c in parse_sql(sql).children]


class TestClauseStructure:
    def test_minimal_select(self):
        ast = parse_sql("SELECT a")
        assert ast.node_type == "SelectStmt"
        assert clause_types("SELECT a") == ["Project"]

    def test_canonical_clause_order(self):
        sql = (
            "SELECT TOP 5 a FROM t WHERE x = 1 GROUP BY a HAVING COUNT(a) > 2 "
            "ORDER BY a LIMIT 3"
        )
        assert clause_types(sql) == [
            "Project", "From", "Where", "GroupBy", "Having", "OrderBy",
            "Limit", "Top",
        ]

    def test_top_is_last_child(self):
        """TOP lives at the end of the child list so toggling it does not
        shift the other clauses' paths (Listing 6 stability)."""
        without = parse_sql("SELECT a FROM t WHERE x = 1")
        with_top = parse_sql("SELECT TOP 3 a FROM t WHERE x = 1")
        assert with_top.children[-1].node_type == "Top"
        for index in range(len(without.children)):
            assert (
                without.children[index].node_type
                == with_top.children[index].node_type
            )

    def test_distinct_marker(self):
        ast = parse_sql("SELECT DISTINCT a FROM t")
        assert ast.children[-1].node_type == "Distinct"

    def test_where_is_always_andexpr(self):
        """A single predicate is still wrapped so adding a conjunct later
        is an insertion, not a clause replacement."""
        ast = parse_sql("SELECT a FROM t WHERE x = 1")
        where = ast.children[2]
        assert where.node_type == "Where"
        assert where.children[0].node_type == "AndExpr"
        assert len(where.children[0].children) == 1

    def test_conjunction_flattened(self):
        ast = parse_sql("SELECT a FROM t WHERE x = 1 AND y = 2 AND z = 3")
        assert len(ast.children[2].children[0].children) == 3

    def test_table1_paths(self):
        """The paper's Table 1 path layout: Project at 0, second
        ProjClause at 0/1, the Where-clause string literal at 2/0/0/1."""
        ast = parse_sql("SELECT year, sales FROM T WHERE cty = 'USA' AND x > 1")
        assert ast.get(Path.parse("0/1/0")).attributes["name"] == "sales"
        assert ast.get(Path.parse("2/0/0/1")).attributes["value"] == "USA"
        assert ast.get(Path.parse("2/0/0")).node_type == "BiExpr"

    def test_limit_offset(self):
        ast = parse_sql("SELECT a FROM t LIMIT 10 OFFSET 5")
        limit = ast.children[-1]
        assert limit.node_type == "Limit"
        assert [c.attributes["value"] for c in limit.children] == [10, 5]

    def test_trailing_semicolon_accepted(self):
        parse_sql("SELECT a;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a FROM t xyzzy qux")


class TestProjection:
    def test_alias_with_as(self):
        proj = parse_sql("SELECT a AS b").children[0].children[0]
        assert proj.children[1].node_type == "AliasName"
        assert proj.children[1].attributes["name"] == "b"

    def test_alias_without_as(self):
        proj = parse_sql("SELECT a b").children[0].children[0]
        assert proj.children[1].attributes["name"] == "b"

    def test_star(self):
        proj = parse_sql("SELECT *").children[0].children[0]
        assert proj.children[0].node_type == "StarExpr"

    def test_qualified_star(self):
        proj = parse_sql("SELECT t.*").children[0].children[0]
        assert proj.children[0].attributes["name"] == "t.*"

    def test_function_name_is_child_leaf(self):
        """Listing 5 requires separate widgets for the function name and
        its argument, so FuncName is a child, not an attribute."""
        func = parse_sql("SELECT avg(a)").children[0].children[0].children[0]
        assert func.node_type == "FuncExpr"
        assert func.children[0].node_type == "FuncName"
        assert func.children[0].attributes["name"] == "avg"

    def test_count_star(self):
        func = parse_sql("SELECT COUNT(*)").children[0].children[0].children[0]
        assert func.children[1].node_type == "StarExpr"

    def test_count_distinct(self):
        func = parse_sql("SELECT COUNT(DISTINCT a)").children[0].children[0].children[0]
        assert func.children[1].node_type == "Distinct"


class TestFromClause:
    def test_table_alias(self):
        ref = parse_sql("SELECT a FROM Galaxy AS g").children[1].children[0]
        assert ref.attributes == {"name": "Galaxy", "alias": "g"}

    def test_udf_table_function(self):
        ref = parse_sql(
            "SELECT a FROM dbo.fGetNearbyObjEq(5.8, 0.3, 2.0) AS d"
        ).children[1].children[0]
        assert ref.node_type == "FuncTableRef"
        assert ref.children[0].attributes["name"] == "dbo.fGetNearbyObjEq"
        assert len(ref.children) == 4

    def test_subquery_in_from(self):
        ref = parse_sql("SELECT * FROM (SELECT a FROM t)").children[1].children[0]
        assert ref.node_type == "SubqueryRef"
        assert ref.children[0].node_type == "SelectStmt"

    def test_comma_join(self):
        from_clause = parse_sql("SELECT a FROM t1, t2").children[1]
        assert len(from_clause.children) == 2

    def test_explicit_join(self):
        join = parse_sql("SELECT a FROM t1 JOIN t2 ON t1.x = t2.x").children[1].children[0]
        assert join.node_type == "JoinRef"
        assert join.attributes["join_type"] == "INNER"
        assert join.children[2].node_type == "OnClause"

    def test_left_outer_join(self):
        join = parse_sql("SELECT a FROM t1 LEFT OUTER JOIN t2 ON t1.x = t2.x").children[1].children[0]
        assert join.attributes["join_type"] == "LEFT"


class TestExpressions:
    def test_comparison(self):
        pred = parse_sql("SELECT a FROM t WHERE x >= 5").children[2].children[0].children[0]
        assert pred.attributes["op"] == ">="

    def test_not_equal_normalised(self):
        pred = parse_sql("SELECT a FROM t WHERE x != 5").children[2].children[0].children[0]
        assert pred.attributes["op"] == "<>"

    def test_arithmetic_precedence(self):
        expr = parse_sql("SELECT a + b * c").children[0].children[0].children[0]
        assert expr.attributes["op"] == "+"
        assert expr.children[1].attributes["op"] == "*"

    def test_parenthesised_precedence(self):
        expr = parse_sql("SELECT (a + b) * c").children[0].children[0].children[0]
        assert expr.attributes["op"] == "*"

    def test_between(self):
        pred = parse_sql("SELECT a FROM t WHERE x BETWEEN 1 AND 5").children[2].children[0].children[0]
        assert pred.node_type == "BetweenExpr"
        assert len(pred.children) == 3

    def test_not_between(self):
        pred = parse_sql("SELECT a FROM t WHERE x NOT BETWEEN 1 AND 5").children[2].children[0].children[0]
        assert pred.node_type == "NotExpr"
        assert pred.children[0].node_type == "BetweenExpr"

    def test_in_list(self):
        pred = parse_sql("SELECT a FROM t WHERE x IN (1, 2, 3)").children[2].children[0].children[0]
        assert pred.node_type == "InExpr"
        assert len(pred.children[1].children) == 3

    def test_in_subquery(self):
        pred = parse_sql("SELECT a FROM t WHERE x IN (SELECT y FROM u)").children[2].children[0].children[0]
        assert pred.children[1].node_type == "SelectStmt"

    def test_like(self):
        pred = parse_sql("SELECT a FROM t WHERE name LIKE 'A%'").children[2].children[0].children[0]
        assert pred.attributes["op"] == "LIKE"

    def test_is_null(self):
        pred = parse_sql("SELECT a FROM t WHERE x IS NULL").children[2].children[0].children[0]
        assert pred.node_type == "IsNullExpr"
        assert not pred.attributes["negated"]

    def test_is_not_null(self):
        pred = parse_sql("SELECT a FROM t WHERE x IS NOT NULL").children[2].children[0].children[0]
        assert pred.attributes["negated"]

    def test_or_flattened(self):
        body = parse_sql("SELECT a FROM t WHERE x = 1 OR y = 2 OR z = 3").children[2].children[0]
        # the AndExpr wrapper holds a single OrExpr with three children
        assert body.children[0].node_type == "OrExpr"
        assert len(body.children[0].children) == 3

    def test_unary_minus_folds_into_literal(self):
        expr = parse_sql("SELECT -5").children[0].children[0].children[0]
        assert expr.node_type == "NumExpr"
        assert expr.attributes["value"] == -5

    def test_hex_literal_value(self):
        pred = parse_sql("SELECT * FROM t WHERE id = 0x400").children[2].children[0].children[0]
        assert pred.children[1].node_type == "HexExpr"
        assert pred.children[1].attributes["value"] == 0x400

    def test_case_expression(self):
        expr = parse_sql(
            "SELECT CASE carrier WHEN 'AA' THEN 1 ELSE 0 END"
        ).children[0].children[0].children[0]
        assert expr.node_type == "CaseExpr"
        assert [c.node_type for c in expr.children] == [
            "CaseInput", "WhenClause", "ElseClause",
        ]

    def test_searched_case(self):
        expr = parse_sql("SELECT CASE WHEN x > 1 THEN 1 END").children[0].children[0].children[0]
        assert expr.children[0].node_type == "WhenClause"

    def test_cast_with_type(self):
        expr = parse_sql("SELECT CAST(a AS INT)").children[0].children[0].children[0]
        assert expr.node_type == "CastExpr"
        assert expr.children[1].attributes["name"] == "INT"

    def test_tableau_cast_without_type(self):
        """Listing 3 contains CAST(uniquecarrier) with no AS type."""
        expr = parse_sql("SELECT CAST(uniquecarrier) AS u").children[0].children[0].children[0]
        assert expr.node_type == "CastExpr"
        assert len(expr.children) == 1

    def test_exists(self):
        pred = parse_sql("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)").children[2].children[0].children[0]
        assert pred.node_type == "ExistsExpr"

    def test_scalar_subquery(self):
        expr = parse_sql("SELECT (SELECT max(x) FROM u)").children[0].children[0].children[0]
        assert expr.node_type == "ScalarSubquery"


class TestSetOperations:
    def test_union(self):
        ast = parse_sql("SELECT a FROM t UNION SELECT b FROM u")
        assert ast.node_type == "SetOpStmt"
        assert ast.attributes["op"] == "UNION"

    def test_union_all(self):
        ast = parse_sql("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert ast.attributes["op"] == "UNION ALL"

    def test_union_left_associative(self):
        ast = parse_sql("SELECT a UNION SELECT b UNION SELECT c")
        assert ast.children[0].node_type == "SetOpStmt"


class TestOrderBy:
    def test_sort_direction(self):
        order = parse_sql("SELECT a FROM t ORDER BY a DESC").children[2]
        assert order.children[0].children[1].attributes["value"] == "DESC"

    def test_implicit_direction_has_no_node(self):
        order = parse_sql("SELECT a FROM t ORDER BY a").children[2]
        assert len(order.children[0].children) == 1

    def test_multiple_keys(self):
        order = parse_sql("SELECT a FROM t ORDER BY a, b DESC").children[2]
        assert len(order.children) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a WHERE",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP a",
            "SELECT CASE END",
        ],
    )
    def test_malformed_raises(self, sql):
        with pytest.raises(SQLSyntaxError):
            parse_sql(sql)
