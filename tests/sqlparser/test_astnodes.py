"""Node model tests: identity, metrics, path editing."""

import pytest

from repro.errors import PathError
from repro.paths import Path
from repro.sqlparser import Node, parse_sql


def leaf(value):
    return Node("NumExpr", {"value": value})


class TestIdentity:
    def test_structural_equality(self):
        a = Node("BiExpr", {"op": "="}, [leaf(1), leaf(2)])
        b = Node("BiExpr", {"op": "="}, [leaf(1), leaf(2)])
        assert a == b
        assert a.fingerprint == b.fingerprint

    def test_attribute_difference_breaks_equality(self):
        a = Node("BiExpr", {"op": "="}, [leaf(1), leaf(2)])
        b = Node("BiExpr", {"op": "<"}, [leaf(1), leaf(2)])
        assert a != b

    def test_child_order_matters(self):
        a = Node("AndExpr", {}, [leaf(1), leaf(2)])
        b = Node("AndExpr", {}, [leaf(2), leaf(1)])
        assert a != b

    def test_hashable_in_sets(self):
        assert len({leaf(1), leaf(1), leaf(2)}) == 2

    def test_not_equal_to_non_node(self):
        assert leaf(1) != 42


class TestMetrics:
    def test_size(self):
        ast = parse_sql("SELECT a, b FROM t")
        # SelectStmt + Project + 2 ProjClause + 2 ColExpr + From + TableRef
        assert ast.size == 8

    def test_depth_of_leaf(self):
        assert leaf(1).depth == 1

    def test_n_leaves(self):
        tree = Node("AndExpr", {}, [leaf(1), Node("BiExpr", {"op": "="},
                                                  [leaf(2), leaf(3)])])
        assert tree.n_leaves == 3

    def test_is_leaf(self):
        assert leaf(0).is_leaf()
        assert not parse_sql("SELECT a").is_leaf()


class TestTraversal:
    def test_preorder_starts_at_root(self):
        ast = parse_sql("SELECT a")
        nodes = list(ast.preorder())
        assert nodes[0] is ast
        assert len(nodes) == ast.size

    def test_walk_with_paths_resolves(self):
        ast = parse_sql("SELECT a, b FROM t WHERE x = 1")
        for path, node in ast.walk_with_paths():
            assert ast.get(path) is node


class TestPathEditing:
    def test_get_root(self):
        ast = parse_sql("SELECT a")
        assert ast.get(Path.root()) is ast

    def test_get_missing_raises(self):
        with pytest.raises(PathError):
            parse_sql("SELECT a").get(Path.parse("9/9"))

    def test_has_path(self):
        ast = parse_sql("SELECT a FROM t")
        assert ast.has_path(Path.parse("1/0"))
        assert not ast.has_path(Path.parse("5"))

    def test_replace_leaf(self):
        ast = parse_sql("SELECT a FROM t WHERE x = 1")
        edited = ast.replace_at(Path.parse("2/0/0/1"), leaf(99))
        assert edited.get(Path.parse("2/0/0/1")).attributes["value"] == 99
        # original untouched (persistent tree)
        assert ast.get(Path.parse("2/0/0/1")).attributes["value"] == 1

    def test_replace_root_returns_subtree(self):
        ast = parse_sql("SELECT a")
        other = parse_sql("SELECT b")
        assert ast.replace_at(Path.root(), other) is other

    def test_delete_child(self):
        ast = parse_sql("SELECT a, b FROM t")
        edited = ast.delete_at(Path.parse("0/1"))
        assert len(edited.children[0].children) == 1

    def test_delete_root_raises(self):
        with pytest.raises(PathError):
            parse_sql("SELECT a").delete_at(Path.root())

    def test_delete_missing_raises(self):
        with pytest.raises(PathError):
            parse_sql("SELECT a").delete_at(Path.parse("0/7"))

    def test_insert_at_end(self):
        ast = parse_sql("SELECT a FROM t")
        clause = parse_sql("SELECT TOP 5 a FROM t").children[-1]
        edited = ast.insert_at(Path.root(), 2, clause)
        assert edited.children[2].node_type == "Top"

    def test_insert_out_of_range_raises(self):
        with pytest.raises(PathError):
            parse_sql("SELECT a").insert_at(Path.root(), 9, leaf(1))

    def test_edits_share_unmodified_subtrees(self):
        ast = parse_sql("SELECT a, b FROM t WHERE x = 1")
        edited = ast.replace_at(Path.parse("2/0/0/1"), leaf(2))
        assert edited.children[0] is ast.children[0]  # Project untouched

    def test_label_and_pretty(self):
        node = Node("BiExpr", {"op": "="}, [leaf(1), leaf(2)])
        assert node.label() == "BiExpr(op==)"
        assert node.pretty().count("\n") == 2
