"""Renderer tests: targeted output checks plus structural round-trips."""

import pytest

from repro.errors import CompileError
from repro.sqlparser import Node, parse_sql, render_sql

ROUNDTRIP_QUERIES = [
    "SELECT * FROM SpecLineIndex WHERE specObjId = 0x400",
    "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 AND Day = 3 "
    "GROUP BY DestState",
    "SELECT TOP 10 g.objID FROM Galaxy AS g, "
    "dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
    "SELECT CASE carrier WHEN 'AA' THEN 'AA' ELSE 'Other' END AS carrier, "
    "FLOOR(distance / 5) AS distance FROM ontime",
    "SELECT SUM(flights) FROM ontime WHERE canceled = 1 "
    "HAVING SUM(flights) > 149 AND SUM(flights) < 1354",
    "SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t "
    "WHERE spec_ts > now AND spec_ts < now + 3) WHERE cust = 'Alice' "
    "AND country = 'China' GROUP BY spec_ts",
    "SELECT a FROM t WHERE x BETWEEN 1 AND 100 ORDER BY a DESC LIMIT 5",
    "SELECT a FROM t1 JOIN t2 ON t1.id = t2.id WHERE a IN (1, 2, 3)",
    "SELECT DISTINCT a FROM t",
    "SELECT a FROM t WHERE NOT x = 1",
    "SELECT a FROM t WHERE x IS NOT NULL",
    "SELECT a FROM t UNION ALL SELECT b FROM u",
    "SELECT a FROM t WHERE name LIKE 'N%'",
    "SELECT CAST(a AS INT) FROM t",
    "SELECT -5, 3.25, 'it''s'",
    "SELECT a FROM t WHERE x = 1 OR y = 2",
    "SELECT a FROM t LIMIT 10 OFFSET 2",
]


@pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
def test_roundtrip_is_stable(sql):
    """parse(render(parse(q))) == parse(q) for all supported constructs."""
    first = parse_sql(sql)
    second = parse_sql(render_sql(first))
    assert first == second


class TestRenderedText:
    def test_top_prints_after_select(self):
        """TOP is the last AST child but must print right after SELECT."""
        sql = render_sql(parse_sql("SELECT TOP 3 a FROM t WHERE x = 1"))
        assert sql.startswith("SELECT TOP 3 ")

    def test_string_escaping(self):
        assert "''" in render_sql(parse_sql("SELECT 'a''b'"))

    def test_hex_preserved(self):
        assert "0x400" in render_sql(parse_sql("SELECT * FROM t WHERE x = 0x400"))

    def test_integral_float_prints_as_int(self):
        sql = render_sql(parse_sql("SELECT a FROM t WHERE x = 5.0"))
        assert "x = 5" in sql

    def test_or_inside_and_parenthesised(self):
        ast = parse_sql("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3")
        sql = render_sql(ast)
        assert "(" in sql
        assert parse_sql(sql) == ast

    def test_single_conjunct_renders_bare(self):
        sql = render_sql(parse_sql("SELECT a FROM t WHERE x = 1"))
        assert sql == "SELECT a FROM t WHERE x = 1"

    def test_unknown_node_raises(self):
        with pytest.raises(CompileError):
            render_sql(Node("Mystery"))

    def test_unknown_clause_raises(self):
        bad = Node("SelectStmt", {}, [
            Node("Project", {}, [Node("ProjClause", {}, [Node("StarExpr")])]),
            Node("Bogus"),
        ])
        with pytest.raises(CompileError):
            render_sql(bad)

    def test_select_without_project_raises(self):
        with pytest.raises(CompileError):
            render_sql(Node("SelectStmt", {}, [Node("From", {}, [
                Node("TableRef", {"name": "t"})])]))

    def test_duplicate_clause_raises(self):
        where = parse_sql("SELECT a FROM t WHERE x = 1").children[2]
        bad = parse_sql("SELECT a FROM t WHERE x = 1")
        bad = Node("SelectStmt", {}, list(bad.children) + [where])
        with pytest.raises(CompileError):
            render_sql(bad)
