"""Ordered tree matching tests."""

from repro.sqlparser import Node, parse_sql
from repro.treediff.matching import align_children, match_trees, tree_distance


def num(v):
    return Node("NumExpr", {"value": v})


def pred(col, v):
    return Node("BiExpr", {"op": "="}, [Node("ColExpr", {"name": col}), num(v)])


class TestAlignChildren:
    def test_identical_lists_all_match(self):
        kids = (num(1), num(2), num(3))
        pairs = align_children(kids, kids)
        assert all(p.is_match for p in pairs)
        assert [(p.a_index, p.b_index) for p in pairs] == [(0, 0), (1, 1), (2, 2)]

    def test_empty_lists(self):
        assert align_children((), ()) == []

    def test_pure_insertion(self):
        pairs = align_children((num(1),), (num(1), num(2)))
        assert pairs[0].is_match
        assert pairs[1].is_insertion
        assert pairs[1].b_index == 1

    def test_pure_deletion(self):
        pairs = align_children((num(1), num(2)), (num(2),))
        assert pairs[0].is_deletion
        assert pairs[1].is_match

    def test_middle_insertion_preserves_order(self):
        a = (num(1), num(3))
        b = (num(1), num(2), num(3))
        pairs = align_children(a, b)
        assert [p.is_insertion for p in pairs] == [False, True, False]

    def test_one_to_one_pairs_across_types(self):
        """A lone table ref swapped for a subquery is a single replacement
        (Figure 5e), not delete+insert."""
        table = Node("TableRef", {"name": "T"})
        subquery = Node("SubqueryRef", {}, [parse_sql("SELECT a FROM T")])
        pairs = align_children((table,), (subquery,))
        assert len(pairs) == 1
        assert pairs[0].is_match

    def test_keyed_conjunct_alignment(self):
        """Month pairs with Month even when the list grows."""
        a = (pred("Month", 9), pred("Day", 3))
        b = (pred("Month", 4), pred("Day", 19), pred("DayOfWeek", 7))
        pairs = align_children(a, b)
        matches = [(p.a_index, p.b_index) for p in pairs if p.is_match]
        assert (0, 0) in matches
        assert (1, 1) in matches
        inserts = [p.b_index for p in pairs if p.is_insertion]
        assert inserts == [2]

    def test_anchored_exact_children_stay_matched(self):
        shared = pred("Day", 3)
        a = (pred("Month", 9), shared)
        b = (pred("Year", 2020), shared)
        pairs = align_children(a, b)
        matches = [(p.a_index, p.b_index) for p in pairs if p.is_match]
        assert (1, 1) in matches


class TestMatchTrees:
    def test_roots_always_matched(self):
        a = parse_sql("SELECT a")
        b = parse_sql("SELECT b FROM t")
        assert ((), ()) in match_trees(a, b)

    def test_full_match_for_equal_trees(self):
        ast = parse_sql("SELECT a, b FROM t WHERE x = 1")
        assert len(match_trees(ast, ast)) == ast.size

    def test_sibling_order_preserved(self):
        a = parse_sql("SELECT a, b")
        b = parse_sql("SELECT b, a")
        matched = match_trees(a, b)
        pairs = [(pa, pb) for pa, pb in matched if len(pa) == 2]
        for pa, pb in pairs:
            # matched projection clauses keep left-to-right order
            assert pa[-1] <= pb[-1] or pb[-1] <= pa[-1]


class TestTreeDistance:
    def test_zero_for_equal(self):
        ast = parse_sql("SELECT a FROM t")
        assert tree_distance(ast, ast) == 0.0

    def test_positive_for_different(self):
        a = parse_sql("SELECT a FROM t")
        b = parse_sql("SELECT b FROM t")
        assert tree_distance(a, b) > 0

    def test_monotone_in_change_size(self):
        base = parse_sql("SELECT a FROM t WHERE x = 1")
        small = parse_sql("SELECT a FROM t WHERE x = 2")
        large = parse_sql("SELECT z, w FROM other WHERE q > 5")
        assert tree_distance(base, small) < tree_distance(base, large)
