"""The per-shape LRU plan cap (``DiffMemo(max_plans_per_shape=...)``).

High-cardinality traffic accumulates one plan per literal pattern of a
shape pair; the cap bounds that table without ever changing extraction
results — evicted patterns fall back to a full alignment, which is the
parity property re-checked here under constant churn.
"""

import pytest

from repro.api import InterfaceSession, generate
from repro.cache.fingerprint import options_fingerprint
from repro.core.options import PipelineOptions
from repro.errors import MappingError
from repro.sqlparser.parser import parse_sql
from repro.treediff import DiffMemo, extract_diffs
from repro.treediff.diff import diff_signature


def _pair(x1, y1, x2, y2):
    """One query pair of a fixed shape whose literal pattern is chosen
    by the equality structure of (x1, y1) vs (x2, y2)."""
    return (
        parse_sql(f"SELECT a FROM t WHERE x = {x1} AND y = {y1}"),
        parse_sql(f"SELECT a FROM t WHERE x = {x2} AND y = {y2}"),
    )


#: four distinct literal patterns of the same skeleton pair
PATTERNS = [
    _pair(1, 2, 1, 3),  # first conjunct equal
    _pair(1, 2, 4, 2),  # second conjunct equal
    _pair(1, 2, 3, 4),  # all distinct
    _pair(1, 1, 2, 2),  # within-tree equalities
]


def _signatures(diffs):
    return [diff_signature(d) for d in diffs]


class TestValidation:
    def test_cap_below_one_rejected(self):
        with pytest.raises(ValueError):
            DiffMemo(max_plans_per_shape=0)

    def test_option_below_one_rejected(self):
        with pytest.raises(MappingError):
            PipelineOptions(max_plans_per_shape=0)

    def test_uncapped_keeps_every_pattern(self):
        memo = DiffMemo()
        for a, b in PATTERNS:
            memo.extract(a, b)
        assert memo.n_plans == len(PATTERNS)
        assert memo.n_evicted_plans == 0


class TestEviction:
    def test_cap_bounds_plans_and_counts_evictions(self):
        memo = DiffMemo(max_plans_per_shape=2)
        for a, b in PATTERNS:
            memo.extract(a, b)
        assert memo.n_plans == 2
        assert memo.n_evicted_plans == len(PATTERNS) - 2

    def test_lru_order_a_hit_refreshes(self):
        memo = DiffMemo(max_plans_per_shape=2)
        memo.extract(*PATTERNS[0])
        memo.extract(*PATTERNS[1])
        memo.extract(*PATTERNS[0])  # replay hit: pattern 0 becomes MRU
        memo.extract(*PATTERNS[2])  # evicts pattern 1, not 0
        replayed_before = memo.n_replayed
        memo.extract(*PATTERNS[0])
        assert memo.n_replayed == replayed_before + 1  # 0 still cached
        full_before = memo.n_full
        memo.extract(*PATTERNS[1])
        assert memo.n_full == full_before + 1  # 1 was evicted

    def test_evicted_pattern_still_extracts_correctly(self):
        """Eviction costs a re-alignment, never correctness."""
        memo = DiffMemo(max_plans_per_shape=1)
        for _ in range(3):  # constant churn through the one slot
            for a, b in PATTERNS:
                direct = extract_diffs(a, b)
                memoised = memo.extract(a, b)
                assert _signatures(direct) == _signatures(memoised)
        assert memo.n_evicted_plans > 0

    def test_import_pairs_respects_cap(self):
        donor = DiffMemo()
        for a, b in PATTERNS:
            donor.extract(a, b)
        capped = DiffMemo(max_plans_per_shape=2)
        capped.import_pairs(donor.export_pairs())
        assert capped.n_plans == 2


class TestPipelinePlumbing:
    STATEMENTS = [
        "SELECT a FROM t WHERE x = 1",
        "SELECT a FROM t WHERE x = 2",
        "SELECT a FROM t WHERE x = 5",
    ]

    def test_option_reaches_the_mine_stage(self):
        capped = generate(
            self.STATEMENTS,
            options=PipelineOptions(max_plans_per_shape=1),
        )
        plain = generate(self.STATEMENTS)
        assert capped.interface.widget_summary() == plain.interface.widget_summary()

    def test_option_reaches_the_session_memo(self):
        session = InterfaceSession(
            options=PipelineOptions(max_plans_per_shape=3)
        )
        assert session._diff_memo.max_plans_per_shape == 3

    def test_cap_excluded_from_options_fingerprint(self):
        """A pure resource knob: capped and uncapped runs must share
        cache entries."""
        assert options_fingerprint(
            PipelineOptions(max_plans_per_shape=5)
        ) == options_fingerprint(PipelineOptions())
