"""Property tests: diff extraction is sound (the diffs reconstruct the
target) and pruning never loses leaf diffs."""

from hypothesis import given, settings

from repro.treediff import extract_diffs
from tests.strategies import select_statements


@settings(max_examples=80, deadline=None)
@given(select_statements(), select_statements())
def test_leaf_diffs_reconstruct_target(a, b):
    """Applying all leaf diffs (deletions right-to-left, then insertions
    and replacements left-to-right) transforms a into b when both trees
    have the same root structure."""
    diffs = [d for d in extract_diffs(a, b, prune=True) if d.is_leaf]
    root_replacement = [d for d in diffs if d.path.is_root()]
    if root_replacement:
        # whole-tree replacement trivially reconstructs
        assert root_replacement[0].t2.equals(b)
        return
    current = a
    replacements = [d for d in diffs if d.is_replacement]
    deletions = sorted(
        (d for d in diffs if d.is_deletion),
        key=lambda d: d.source_path,
        reverse=True,
    )
    insertions = sorted((d for d in diffs if d.is_insertion), key=lambda d: d.path)
    for diff in replacements + deletions + insertions:
        current = diff.apply(current)
    assert current.equals(b)


@settings(max_examples=80, deadline=None)
@given(select_statements(), select_statements())
def test_pruning_preserves_leaf_diffs(a, b):
    pruned_leaves = {
        (str(d.path), d.t1, d.t2)
        for d in extract_diffs(a, b, prune=True)
        if d.is_leaf
    }
    full_leaves = {
        (str(d.path), d.t1, d.t2)
        for d in extract_diffs(a, b, prune=False)
        if d.is_leaf
    }
    assert pruned_leaves == full_leaves


@settings(max_examples=80, deadline=None)
@given(select_statements(), select_statements())
def test_diff_symmetry(a, b):
    """Extracting b->a yields the inverses of a->b (leaf level)."""
    forward = {
        (str(d.path), d.is_insertion, d.is_deletion)
        for d in extract_diffs(a, b, prune=True)
        if d.is_leaf and d.is_replacement
    }
    backward = {
        (str(d.path), d.is_insertion, d.is_deletion)
        for d in extract_diffs(b, a, prune=True)
        if d.is_leaf and d.is_replacement
    }
    # replacements appear at the same paths in both directions when no
    # structural insert/delete shifts indices.  The matcher may resolve
    # *either* direction with insert+delete instead of a replacement when
    # duplicate siblings make the alignment ambiguous (e.g. three equal
    # conjuncts of which one changes), so both directions must be free of
    # structural edits before the paths are required to agree.
    inserts_or_deletes = [
        d
        for direction in (extract_diffs(a, b, prune=True), extract_diffs(b, a, prune=True))
        for d in direction
        if d.is_leaf and not d.is_replacement
    ]
    if not inserts_or_deletes:
        assert forward == backward


@settings(max_examples=80, deadline=None)
@given(select_statements())
def test_self_diff_empty(ast):
    assert extract_diffs(ast, ast) == []
