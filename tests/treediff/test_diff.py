"""Diff extraction tests, including the paper's Table 1."""

import pytest

from repro.errors import DiffError
from repro.paths import Path
from repro.sqlparser import Node, parse_sql
from repro.treediff import Diff, classify_change, diff_signature, extract_diffs


def by_path(diffs):
    return {str(d.path): d for d in diffs}


class TestTable1:
    """The diffs table of the paper's Table 1 (Figure 3 ASTs)."""

    def test_all_four_records_present_unpruned(self, simple_pair):
        q1, q2 = simple_pair
        diffs = by_path(extract_diffs(q1, q2, prune=False))
        # d1: ColExpr(sales) -> ColExpr(costs), type str
        d1 = diffs["0/1/0"]
        assert d1.t1.attributes["name"] == "sales"
        assert d1.t2.attributes["name"] == "costs"
        assert d1.kind == "str"
        # d2: StrExpr(USA) -> StrExpr(EUR), type str
        d2 = diffs["2/0/0/1"]
        assert d2.t1.attributes["value"] == "USA"
        assert d2.kind == "str"
        # d3: ProjClause ancestor, type tree
        assert diffs["0/1"].kind == "tree"
        assert not diffs["0/1"].is_leaf
        # d4: BiExpr ancestor, type tree
        assert diffs["2/0/0"].kind == "tree"

    def test_root_replacement_always_in_unpruned(self, simple_pair):
        q1, q2 = simple_pair
        diffs = by_path(extract_diffs(q1, q2, prune=False))
        assert "/" in diffs

    def test_lca_pruning_keeps_leaves_and_root(self, simple_pair):
        """With two leaf-diffs in different clauses, their LCA is the root;
        intermediate ancestors are pruned (Section 6.2)."""
        q1, q2 = simple_pair
        paths = set(by_path(extract_diffs(q1, q2, prune=True)))
        assert paths == {"0/1/0", "2/0/0/1", "/"}

    def test_single_leaf_diff_prunes_all_ancestors(self):
        a = parse_sql("SELECT a FROM t WHERE x = 1")
        b = parse_sql("SELECT a FROM t WHERE x = 2")
        diffs = extract_diffs(a, b, prune=True)
        assert len(diffs) == 1
        assert diffs[0].is_leaf

    def test_pruned_is_subset_of_unpruned(self, simple_pair):
        q1, q2 = simple_pair
        pruned = {diff_signature(d) for d in extract_diffs(q1, q2, prune=True)}
        full = {diff_signature(d) for d in extract_diffs(q1, q2, prune=False)}
        assert pruned <= full


class TestStructuralDiffs:
    def test_equal_trees_no_diffs(self):
        ast = parse_sql("SELECT a FROM t")
        assert extract_diffs(ast, ast) == []

    def test_insertion_has_null_t1(self):
        a = parse_sql("SELECT a FROM t")
        b = parse_sql("SELECT TOP 5 a FROM t")
        diffs = extract_diffs(a, b)
        assert len(diffs) == 1
        assert diffs[0].is_insertion
        assert diffs[0].t2.node_type == "Top"
        assert diffs[0].kind == "tree"

    def test_deletion_has_null_t2(self):
        a = parse_sql("SELECT TOP 5 a FROM t")
        b = parse_sql("SELECT a FROM t")
        diffs = extract_diffs(a, b)
        assert diffs[0].is_deletion

    def test_table_to_subquery_is_one_replacement(self):
        a = parse_sql("SELECT * FROM T")
        b = parse_sql("SELECT * FROM (SELECT a FROM T WHERE b > 10)")
        diffs = extract_diffs(a, b)
        assert len(diffs) == 1
        assert diffs[0].t1.node_type == "TableRef"
        assert diffs[0].t2.node_type == "SubqueryRef"

    def test_nested_literal_change_path(self):
        a = parse_sql("SELECT * FROM (SELECT a FROM T WHERE b > 10)")
        b = parse_sql("SELECT * FROM (SELECT a FROM T WHERE b > 20)")
        diffs = extract_diffs(a, b)
        assert len(diffs) == 1
        assert str(diffs[0].path) == "1/0/0/2/0/0/1"
        assert diffs[0].kind == "num"

    def test_query_indices_recorded(self):
        a = parse_sql("SELECT a")
        b = parse_sql("SELECT b")
        diffs = extract_diffs(a, b, q1=7, q2=9)
        assert diffs[0].q1 == 7
        assert diffs[0].q2 == 9


class TestDiffSemantics:
    def test_apply_replacement(self):
        a = parse_sql("SELECT a FROM t WHERE x = 1")
        b = parse_sql("SELECT a FROM t WHERE x = 2")
        diffs = extract_diffs(a, b)
        assert diffs[0].apply(a) == b

    def test_apply_insertion(self):
        a = parse_sql("SELECT a FROM t")
        b = parse_sql("SELECT TOP 5 a FROM t")
        assert extract_diffs(a, b)[0].apply(a) == b

    def test_apply_deletion(self):
        a = parse_sql("SELECT TOP 5 a FROM t")
        b = parse_sql("SELECT a FROM t")
        assert extract_diffs(a, b)[0].apply(a) == b

    def test_invert_roundtrip(self):
        a = parse_sql("SELECT a FROM t WHERE x = 1")
        b = parse_sql("SELECT a FROM t WHERE x = 2")
        d = extract_diffs(a, b)[0]
        assert d.invert().apply(b) == a

    def test_apply_to_incompatible_tree_raises(self):
        a = parse_sql("SELECT a FROM t WHERE x = 1")
        b = parse_sql("SELECT a FROM t WHERE x = 2")
        d = extract_diffs(a, b)[0]
        with pytest.raises(DiffError):
            d.apply(parse_sql("SELECT a"))

    def test_all_null_diff_rejected(self):
        with pytest.raises(DiffError):
            Diff(0, 1, Path.root(), None, None, "tree", True)

    def test_signature_ignores_query_ids(self):
        a = parse_sql("SELECT a FROM t WHERE x = 1")
        b = parse_sql("SELECT a FROM t WHERE x = 2")
        d1 = extract_diffs(a, b, q1=0, q2=1)[0]
        d2 = extract_diffs(a, b, q1=5, q2=6)[0]
        assert diff_signature(d1) == diff_signature(d2)


class TestClassifyChange:
    def test_num_pair(self):
        assert classify_change(
            Node("NumExpr", {"value": 1}), Node("NumExpr", {"value": 2})
        ) == "num"

    def test_str_pair(self):
        assert classify_change(
            Node("StrExpr", {"value": "a"}), Node("ColExpr", {"name": "b"})
        ) == "str"

    def test_num_str_casts_to_str(self):
        assert classify_change(
            Node("NumExpr", {"value": 1}), Node("StrExpr", {"value": "x"})
        ) == "str"

    def test_presence_toggle_is_tree(self):
        assert classify_change(None, Node("NumExpr", {"value": 1})) == "tree"

    def test_mixed_tree(self):
        assert classify_change(
            Node("NumExpr", {"value": 1}), parse_sql("SELECT a")
        ) == "tree"
