"""Property suite: memoised diff extraction == direct diff extraction.

The :class:`~repro.treediff.memo.DiffMemo` replays alignment plans keyed
by skeleton pair + literal pattern; byte-identical output is its hard
contract.  These properties hammer it with:

* random *template* workloads (the traffic the memo is built for —
  repeated shapes, varying literals);
* fully random SELECT ASTs (arbitrary structural inserts/deletes across
  different skeletons);
* adversarial same-skeleton / different-semantics pairs: conjunct lists
  over a tiny literal pool, so pairs share skeletons while their
  concrete equality patterns differ — the case where replaying a plan
  from the wrong pattern would silently mis-align.

Every comparison goes through one *shared* memo (plans accumulated
across examples, maximising replays), and parity covers the diffs
table, the mined edges, the merged widget set, and closure answers.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.serialize import (
    diff_memo_from_dict,
    diff_memo_to_dict,
    diff_to_dict,
)
from repro.core.interface import Interface
from repro.core.mapper import initialize, merge_widgets
from repro.core.options import PipelineOptions
from repro.graph.build import BuildStats, build_interaction_graph
from repro.sqlparser.parser import parse_sql
from repro.treediff import DiffMemo, extract_diffs
from tests.strategies import select_statements, template_statements

#: one memo shared by every example of each property — replays accumulate
#: across examples, which is exactly the aliasing risk under test
_SHARED_TEMPLATE_MEMO = DiffMemo()
_SHARED_RANDOM_MEMO = DiffMemo()
_SHARED_ADVERSARIAL_MEMO = DiffMemo()

_OPTIONS = PipelineOptions()


def _dicts(diffs):
    return [diff_to_dict(d) for d in diffs]


def _assert_pairwise_parity(asts, memo, prune=True):
    """Memoised extraction of every adjacent pair == direct extraction."""
    for a, b in zip(asts, asts[1:]):
        direct = extract_diffs(a, b, q1=5, q2=9, prune=prune)
        memoised = memo.extract(a, b, q1=5, q2=9, prune=prune)
        assert _dicts(direct) == _dicts(memoised)


def _interface_from(diffs, queries):
    widgets = initialize(diffs, _OPTIONS.library, _OPTIONS.annotations)
    widgets = merge_widgets(
        widgets,
        _OPTIONS.library,
        _OPTIONS.annotations,
        leaf_diffs=[d for d in diffs if d.is_leaf],
    )
    return Interface(
        widgets=widgets,
        initial_query=queries[0],
        annotations=_OPTIONS.annotations,
    )


@settings(max_examples=40, deadline=None)
@given(template_statements(min_size=4, max_size=8))
def test_template_workloads_pairwise_parity(statements):
    asts = [parse_sql(sql) for sql in statements]
    _assert_pairwise_parity(asts, _SHARED_TEMPLATE_MEMO)


@settings(max_examples=40, deadline=None)
@given(select_statements(), select_statements())
def test_random_asts_pairwise_parity(a, b):
    for prune in (True, False):
        direct = extract_diffs(a, b, prune=prune)
        memoised = _SHARED_RANDOM_MEMO.extract(a, b, prune=prune)
        assert _dicts(direct) == _dicts(memoised)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(
                st.integers(min_value=0, max_value=2), min_size=2, max_size=4
            ),
            st.lists(
                st.integers(min_value=0, max_value=2), min_size=2, max_size=4
            ),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_adversarial_same_skeleton_pairs(value_pairs):
    """Pairs drawn from a 3-value literal pool over equal-length conjunct
    lists: same-length pairs share one skeleton pair while their literal
    equality patterns vary freely, so a pattern-blind memo would replay
    wrong plans (the aligner anchors on *concrete* equality)."""
    for left_values, right_values in value_pairs:
        a = parse_sql(
            "SELECT a FROM t WHERE "
            + " AND ".join(f"x = {v}" for v in left_values)
        )
        b = parse_sql(
            "SELECT a FROM t WHERE "
            + " AND ".join(f"x = {v}" for v in right_values)
        )
        direct = extract_diffs(a, b)
        memoised = _SHARED_ADVERSARIAL_MEMO.extract(a, b)
        assert _dicts(direct) == _dicts(memoised)


@settings(max_examples=15, deadline=None)
@given(template_statements(min_size=5, max_size=10))
def test_memoised_mining_full_parity(statements):
    """Graph, widget set, and closure answers from a memoised mine equal
    the direct mine's — the end-to-end contract of the Mine stage."""
    asts = [parse_sql(sql) for sql in statements]
    stats = BuildStats()
    direct = build_interaction_graph(asts, window=4)
    memoised = build_interaction_graph(
        asts, window=4, memo=DiffMemo(), stats=stats
    )
    assert _dicts(direct.diffs) == _dicts(memoised.diffs)
    assert [(e.q1, e.q2) for e in direct.edges] == [
        (e.q1, e.q2) for e in memoised.edges
    ]
    assert (
        stats.n_alignments_memoised + stats.n_alignments_full
        <= stats.n_pairs_compared
    )
    if not direct.diffs:
        return
    direct_iface = _interface_from(direct.diffs, asts)
    memoised_iface = _interface_from(memoised.diffs, asts)
    assert direct_iface.widget_summary() == memoised_iface.widget_summary()
    for probe in asts[-3:]:
        assert direct_iface.expresses(probe) == memoised_iface.expresses(probe)


@settings(max_examples=15, deadline=None)
@given(template_statements(min_size=4, max_size=8))
def test_export_import_roundtrip_parity(statements):
    """A memo serialised to its representative-pair payload and re-imported
    replays byte-identically (and actually replays, not re-aligns)."""
    asts = [parse_sql(sql) for sql in statements]
    source = DiffMemo()
    for a, b in zip(asts, asts[1:]):
        source.extract(a, b)
    payload = diff_memo_to_dict(source.export_pairs())
    restored = DiffMemo()
    restored.import_pairs(diff_memo_from_dict(payload))
    assert restored.n_plans == source.n_plans
    for a, b in zip(asts, asts[1:]):
        direct = extract_diffs(a, b)
        memoised = restored.extract(a, b)
        assert _dicts(direct) == _dicts(memoised)
    # every pair was seen at import time: nothing required a full alignment
    assert restored.n_full == 0
    assert restored.n_replayed == len(asts) - 1


def test_known_adversarial_anchor_flip():
    """The concrete counterexample from the design: same skeletons, but
    the equality pattern moves the LCS anchor, so the two pairs need two
    different plans.  A pattern-blind replay would report the diff at the
    wrong conjunct."""
    memo = DiffMemo()
    cases = [
        ("SELECT a FROM t WHERE x = 0 AND x = 0", "SELECT a FROM t WHERE x = 0 AND x = 245"),
        ("SELECT a FROM t WHERE x = 1 AND x = 2", "SELECT a FROM t WHERE x = 3 AND x = 2"),
        ("SELECT a FROM t WHERE x = 1 AND x = 2", "SELECT a FROM t WHERE x = 2 AND x = 4"),
    ]
    for s1, s2 in cases:
        a, b = parse_sql(s1), parse_sql(s2)
        assert _dicts(extract_diffs(a, b)) == _dicts(memo.extract(a, b))
    # the three equality patterns are distinct, so three plans exist …
    assert memo.n_plans == 3
    # … and a repeat of each case replays its own plan
    before = memo.n_replayed
    for s1, s2 in cases:
        a, b = parse_sql(s1), parse_sql(s2)
        assert _dicts(extract_diffs(a, b)) == _dicts(memo.extract(a, b))
    assert memo.n_replayed == before + len(cases)
