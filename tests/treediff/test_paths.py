"""Path tests."""

import pytest

from repro.errors import PathError
from repro.paths import Path


class TestConstruction:
    def test_root(self):
        assert Path.root().is_root()
        assert str(Path.root()) == "/"

    def test_parse_paper_notation(self):
        assert Path.parse("0/1/0").steps == (0, 1, 0)

    def test_parse_root_forms(self):
        assert Path.parse("") == Path.root()
        assert Path.parse("/") == Path.root()

    def test_parse_malformed_raises(self):
        with pytest.raises(PathError):
            Path.parse("0/x/1")

    def test_negative_step_raises(self):
        with pytest.raises(PathError):
            Path((0, -1))


class TestNavigation:
    def test_child(self):
        assert Path.parse("0/1").child(2) == Path.parse("0/1/2")

    def test_parent(self):
        assert Path.parse("0/1/2").parent() == Path.parse("0/1")

    def test_parent_of_root_raises(self):
        with pytest.raises(PathError):
            Path.root().parent()

    def test_concat(self):
        assert Path.parse("0").concat(Path.parse("1/2")) == Path.parse("0/1/2")

    def test_relative_to(self):
        assert Path.parse("0/1/2").relative_to(Path.parse("0/1")) == Path.parse("2")

    def test_relative_to_non_ancestor_raises(self):
        with pytest.raises(PathError):
            Path.parse("0/1").relative_to(Path.parse("2"))


class TestPredicates:
    def test_prefix(self):
        assert Path.parse("0/1").is_prefix_of(Path.parse("0/1/5"))
        assert Path.parse("0/1").is_prefix_of(Path.parse("0/1"))
        assert not Path.parse("0/2").is_prefix_of(Path.parse("0/1/5"))

    def test_strict_prefix(self):
        assert Path.parse("0").is_strict_prefix_of(Path.parse("0/1"))
        assert not Path.parse("0/1").is_strict_prefix_of(Path.parse("0/1"))

    def test_root_is_prefix_of_everything(self):
        assert Path.root().is_prefix_of(Path.parse("3/1/4"))

    def test_common_prefix(self):
        a = Path.parse("0/1/2")
        b = Path.parse("0/1/5/6")
        assert a.common_prefix(b) == Path.parse("0/1")

    def test_common_prefix_disjoint_is_root(self):
        assert Path.parse("1").common_prefix(Path.parse("2")) == Path.root()

    def test_depth(self):
        assert Path.root().depth == 0
        assert Path.parse("0/1/0").depth == 3


class TestOrderingAndHashing:
    def test_sortable(self):
        paths = [Path.parse(p) for p in ("1", "0/2", "0", "0/1")]
        assert [str(p) for p in sorted(paths)] == ["0", "0/1", "0/2", "1"]

    def test_usable_as_dict_key(self):
        table = {Path.parse("0/1"): "x"}
        assert table[Path.parse("0/1")] == "x"

    def test_iteration_and_len(self):
        path = Path.parse("3/1/4")
        assert list(path) == [3, 1, 4]
        assert len(path) == 3
