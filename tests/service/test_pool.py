"""SessionPool behaviour: routing, ordering, drain, errors, lifecycle,
backpressure, async serving, and shared-store publication."""

import asyncio
import time

import pytest

from repro.api import InterfaceSession, generate, generate_many
from repro.cache.store import GraphStore
from repro.core.options import PipelineOptions
from repro.errors import ServiceError
from repro.service import SessionPool
from repro.service.pool import _shard_of

LOG_A = [
    "SELECT a FROM t WHERE x = 1",
    "SELECT a FROM t WHERE x = 2",
    "SELECT a FROM t WHERE x = 5",
]
LOG_B = [
    "SELECT b FROM u WHERE y = 3",
    "SELECT b FROM u WHERE y = 9",
    "SELECT b FROM u WHERE y = 4",
]


@pytest.fixture(scope="module")
def pool():
    """One module-scoped pool; tests isolate through distinct client ids."""
    with SessionPool(pool_size=2, queue_depth=4) as shared:
        yield shared


class TestSubmitDrain:
    def test_parity_with_one_shot_generate(self, pool):
        for statement in LOG_A:
            pool.submit("parity-a", statement)
        pool.submit("parity-b", LOG_B)  # whole log as one batch
        results = pool.drain()
        assert (
            results["parity-a"].interface.widget_summary()
            == generate(LOG_A).interface.widget_summary()
        )
        assert (
            results["parity-b"].interface.widget_summary()
            == generate(LOG_B).interface.widget_summary()
        )

    def test_batches_of_one_client_apply_in_submit_order(self, pool):
        session = InterfaceSession()
        for statement in LOG_A:
            session.append_sql([statement])
            pool.submit("ordered", statement)
        results = pool.drain()
        assert results["ordered"].provenance["n_queries"] == len(LOG_A)
        assert (
            results["ordered"].interface.widget_summary()
            == session.interface.widget_summary()
        )

    def test_drain_keeps_sessions_alive_for_later_appends(self, pool):
        pool.submit("alive", LOG_A[:2])
        first = pool.drain()["alive"]
        assert first.provenance["n_queries"] == 2
        pool.submit("alive", LOG_A[2])
        second = pool.drain()["alive"]
        assert second.provenance["n_queries"] == 3
        assert (
            second.interface.widget_summary()
            == generate(LOG_A).interface.widget_summary()
        )

    def test_release_forgets_a_client(self, pool):
        pool.submit("released", LOG_A[:2])
        pool.drain()
        pool.release(["released"])
        pool.submit("released", LOG_B)
        result = pool.drain()["released"]
        # a fresh session: only LOG_B, not LOG_A[:2] + LOG_B
        assert result.provenance["n_queries"] == len(LOG_B)

    def test_sharding_is_stable_and_covers_workers(self):
        assert _shard_of("some-client", 4) == _shard_of("some-client", 4)
        shards = {_shard_of(f"client-{i}", 2) for i in range(32)}
        assert shards == {0, 1}

    def test_acks_and_stats_count_appends(self, pool):
        before = pool.stats().n_submitted
        pool.submit("counted", LOG_A[0])
        pool.submit("counted", LOG_A[1])
        pool.drain()
        stats = pool.stats()
        assert stats.n_submitted == before + 2
        acks = [a for a in pool.acks() if a.client_id == "counted"]
        assert len(acks) == 2
        assert all(a.ok and a.n_widgets >= 0 for a in acks)
        assert [a.n_queries for a in sorted(acks, key=lambda a: a.seq)] == [1, 2]


class TestErrors:
    def test_bad_batch_fails_that_append_not_the_pool(self, pool):
        pool.submit("broken", "SELECT FROM WHERE")  # unparseable
        with pytest.raises(ServiceError) as excinfo:
            pool.drain()
        assert excinfo.value.failures
        assert "broken" in excinfo.value.failures[0]
        # the pool survives and the next drain is clean
        pool.submit("fine", LOG_A[0])
        results = pool.drain()
        assert "fine" in results

    def test_non_strict_drain_reports_through_stats(self, pool):
        pool.submit("lenient", "")  # empty batch -> LogError in the worker
        results = pool.drain(strict=False)
        assert "lenient" not in results
        assert pool.stats().n_failed >= 1

    def test_empty_batch_is_an_error(self, pool):
        pool.submit("empty-batch", [])
        with pytest.raises(ServiceError):
            pool.drain()

    def test_constructor_validation(self):
        with pytest.raises(ServiceError):
            SessionPool(pool_size=0)
        with pytest.raises(ServiceError):
            SessionPool(queue_depth=0)

    def test_submit_after_close_raises(self):
        pool = SessionPool(pool_size=1)
        pool.close()
        with pytest.raises(ServiceError):
            pool.submit("late", LOG_A[0])
        with pytest.raises(ServiceError):
            pool.drain()
        pool.close()  # idempotent


class TestConcurrentIntrospection:
    def test_stats_polling_during_drain_does_not_lose_the_reply(self):
        """Regression: a stats()/acks() call racing drain() used to pop
        the worker's 'drained' reply off the shared outbox and drop it,
        hanging drain() forever.  Poll aggressively while draining."""
        import threading

        with SessionPool(pool_size=2, queue_depth=4) as pool:
            for index in range(6):
                pool.submit(f"poll-{index % 2}", LOG_A[index % len(LOG_A)])
            stop = threading.Event()

            def hammer_stats():
                while not stop.is_set():
                    pool.stats()
                    pool.acks()

            poller = threading.Thread(target=hammer_stats, daemon=True)
            poller.start()
            try:
                results = pool.drain()
            finally:
                stop.set()
                poller.join(timeout=10)
            assert set(results) == {"poll-0", "poll-1"}

    def test_drain_scoped_to_clients_leaves_other_failures_pending(self, pool):
        pool.submit("scoped-bad", "SELECT FROM WHERE")
        pool.submit("scoped-good", LOG_A[0])
        # a drain scoped to the healthy client must not raise for — nor
        # consume — the other client's failure
        results = pool.drain(clients=["scoped-good"])
        assert "scoped-good" in results
        with pytest.raises(ServiceError) as excinfo:
            pool.drain()
        assert "scoped-bad" in excinfo.value.failures[0]

    def test_flush_errors_accessor_defaults_empty(self, pool):
        pool.submit("flushless", LOG_A[0])
        pool.drain()
        assert pool.flush_errors() == []


class TestBackpressure:
    def test_submit_blocks_when_the_shard_queue_is_full(self):
        """With queue_depth=1 and a worker busy on a slow append, the
        second-plus submits must wait for capacity instead of buffering."""
        slow = [f"SELECT a FROM t WHERE x = {i}" for i in range(60)]
        with SessionPool(pool_size=1, queue_depth=1) as pool:
            pool.submit("pressure", slow)  # occupies the worker
            started = time.perf_counter()
            for i in range(3):
                pool.submit("pressure", f"SELECT a FROM t WHERE x = {100 + i}")
            blocked = time.perf_counter() - started
            results = pool.drain()
        assert results["pressure"].provenance["n_queries"] == len(slow) + 3
        # the submits cannot all have been instantaneous: at least one
        # waited for the worker to pop the queue
        assert blocked > 0.001


class TestServe:
    def test_serve_consumes_a_sync_stream(self, pool):
        events = [("serve-sync", batch) for batch in (LOG_A[:2], LOG_A[2])]
        results = asyncio.run(pool.serve(events))
        assert (
            results["serve-sync"].interface.widget_summary()
            == generate(LOG_A).interface.widget_summary()
        )

    def test_serve_consumes_an_async_stream(self, pool):
        async def stream():
            for batch in (LOG_B[:1], LOG_B[1:]):
                await asyncio.sleep(0)
                yield "serve-async", batch

        results = asyncio.run(pool.serve(stream()))
        assert (
            results["serve-async"].interface.widget_summary()
            == generate(LOG_B).interface.widget_summary()
        )

    def test_serve_without_drain_leaves_synchronisation_to_caller(self, pool):
        events = [("serve-nodrain", LOG_A[0])]
        assert asyncio.run(pool.serve(events, drain=False)) == {}
        results = pool.drain()
        assert "serve-nodrain" in results


class TestServeCompile:
    def test_patch_stream_folds_to_the_full_page(self, pool):
        from repro.compiler import compile_html
        from repro.compiler.incremental import apply_patch, page_html

        acks = []
        events = [
            ("fold-a", LOG_A[:2]),
            ("fold-b", LOG_B[:2]),
            ("fold-a", LOG_A[2]),
            ("fold-b", LOG_B[2]),
        ]
        results = asyncio.run(
            pool.serve(events, on_result=acks.append, compile="patch")
        )
        assert len(acks) == len(events)
        states = {}
        for ack in sorted(acks, key=lambda a: a.seq):
            assert ack.compiled is not None
            states[ack.client_id] = apply_patch(
                states.get(ack.client_id), ack.compiled
            )
        # folding each client's patch stream reproduces the full page a
        # one-shot compile of its final interface would render (the
        # module-scoped pool drains other tests' clients too — only ours
        # carry folded state)
        for client_id in ("fold-a", "fold-b"):
            assert page_html(states[client_id]) == compile_html(
                results[client_id].interface
            )

    def test_page_mode_ships_full_html_every_append(self, pool):
        from repro.compiler import compile_html

        acks = []
        events = [("page-mode", LOG_A[:2]), ("page-mode", LOG_A[2])]
        results = asyncio.run(
            pool.serve(events, on_result=acks.append, compile="page")
        )
        last = max(acks, key=lambda a: a.seq)
        assert last.compiled["kind"] == "page_html"
        assert last.compiled["html"] == compile_html(results["page-mode"].interface)

    def test_compile_failure_does_not_fail_the_append(self, pool):
        # one query mines no widgets: the compile errors, the append lands
        acks = []
        results = asyncio.run(
            pool.serve(
                [("compile-err", LOG_A[0])],
                on_result=acks.append,
                compile="page",
            )
        )
        assert results["compile-err"].interface is not None
        assert acks[0].compiled["kind"] == "error"
        assert "CompileError" in acks[0].compiled["error"]

    def test_invalid_compile_mode_rejected(self, pool):
        with pytest.raises(ServiceError, match="compile"):
            asyncio.run(pool.serve([], compile="xml"))

    def test_compile_mode_resets_after_serve(self, pool):
        asyncio.run(pool.serve([("reset-check", LOG_A[0])], compile="page"))
        assert pool._compile_mode is None
        pool.submit("reset-check", LOG_A[1])
        results = pool.drain()
        assert "reset-check" in results


class TestSharedStore:
    def test_drain_publishes_graphs_widgets_and_proofs(self, tmp_path):
        cache_dir = tmp_path / "store"
        options = PipelineOptions(cache_dir=str(cache_dir))
        with SessionPool(options=options, pool_size=2) as pool:
            pool.submit("pub-a", LOG_A)
            pool.submit("pub-b", LOG_B)
            pool.drain()
        store = GraphStore(cache_dir)
        stats = store.stats()
        assert stats["n_graphs"] == 2
        assert stats["n_widget_sets"] == 2
        # a later one-shot generate over the same log is a full hit
        warm = generate(LOG_A, options=PipelineOptions(cache_dir=str(cache_dir)))
        assert warm.run.stage("mine").stats["skipped"] is True
        assert warm.run.stage("merge").stats["skipped"] is True

    def test_generate_many_through_a_pool(self, pool):
        logs = [LOG_A, LOG_B]
        pooled = generate_many(logs, pool=pool)
        serial = generate_many(logs)
        assert [r.interface.widget_summary() for r in pooled] == [
            r.interface.widget_summary() for r in serial
        ]
        # repeated calls get fresh clients (no accidental accumulation)
        again = generate_many(logs, pool=pool)
        assert [r.provenance["n_queries"] for r in again] == [len(LOG_A), len(LOG_B)]

    def test_generate_many_rejects_pool_plus_workers(self, pool):
        with pytest.raises(ValueError):
            generate_many([LOG_A], pool=pool, workers=2)
