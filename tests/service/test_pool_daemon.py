"""Pool ↔ daemon integration: live streaming and store parity.

Two acceptance criteria of the daemon work live here.  First, a pool
wired to a store daemon must produce *byte-identical* store records —
widget sets, closure proofs, everything — to a pool writing the packed
layout in-process, on every bundled log family.  Second,
``SessionPool.serve(on_result=...)`` must deliver each append's result
to the subscriber *before* the drain barrier returns, so a live
dashboard never lags the batch path.
"""

import asyncio
import json
import shutil
import tempfile
import time

import pytest

from repro.cache.blockstore import SegmentReader
from repro.core.options import PipelineOptions
from repro.logs import AdhocLogGenerator, OLAPLogGenerator, SDSSLogGenerator
from repro.logs.sessions import segment_asts
from repro.service import SessionPool, running_daemon

FAMILIES = ["sdss", "olap", "adhoc", "sessions"]
_SEGMENTS = ("graphs.seg", "widgets.seg", "proofs.seg", "diffmemos.seg")


def _family_log(family):
    """Small cuts of the four bundled log families (the full-size parity
    sweep lives in test_merge_incremental; here the families exercise
    the daemon path, not merge depth)."""
    if family == "sdss":
        return SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 18).asts()
    if family == "olap":
        return OLAPLogGenerator(seed=1).generate(18).asts()
    if family == "adhoc":
        return AdhocLogGenerator(seed=2).student_log("S1", 14).asts()
    interleaved = SDSSLogGenerator(seed=3).interleaved(2, 8).asts()
    return max(segment_asts(interleaved, 0.3, 0.3), key=len)


@pytest.fixture
def sock_path():
    workdir = tempfile.mkdtemp(prefix="repro-sock-", dir="/tmp")
    yield f"{workdir}/d.sock"
    shutil.rmtree(workdir, ignore_errors=True)


def _serve_families(options):
    """Run every family through a pool in two batches; returns the
    per-family widget summaries after drain + close-flush."""
    summaries = {}
    with SessionPool(options=options, pool_size=2) as pool:
        for family in FAMILIES:
            log = _family_log(family)
            pool.submit(f"fam-{family}", log[: len(log) // 2])
            pool.submit(f"fam-{family}", log[len(log) // 2 :])
        results = pool.drain()
        for family in FAMILIES:
            summaries[family] = results[
                f"fam-{family}"
            ].interface.widget_summary()
    return summaries


class TestPoolDaemonParity:
    def test_all_families_byte_identical_to_in_process_store(
        self, tmp_path, sock_path
    ):
        local_root = tmp_path / "local-store"
        daemon_root = tmp_path / "daemon-store"
        client_root = tmp_path / "client-unused"

        local_summaries = _serve_families(
            PipelineOptions(cache_dir=str(local_root))
        )
        with running_daemon(daemon_root, sock_path) as daemon:
            remote_summaries = _serve_families(
                PipelineOptions(
                    cache_dir=str(client_root), daemon_socket=sock_path
                )
            )
            meters = daemon.daemon_stats()["clients"]
        # identical interfaces per family
        assert remote_summaries == local_summaries
        # the records travelled through the daemon, not the client root
        assert meters and any(m["bytes_in"] > 0 for m in meters.values())
        assert not any(client_root.glob("*.seg")) or all(
            SegmentReader(p).keys() == [] for p in client_root.glob("*.seg")
        )
        # and every persisted record is byte-identical across the paths
        # (graph headers carry wall-clock mining stats, the one field
        # two runs can never agree on — normalised before comparing)
        local_keys = {
            name: SegmentReader(local_root / name).keys() for name in _SEGMENTS
        }
        assert sorted(local_keys["graphs.seg"])  # the sweep stored things
        for name in _SEGMENTS:
            reader = SegmentReader(daemon_root / name)
            assert sorted(reader.keys()) == sorted(local_keys[name]), name
            local_reader = SegmentReader(local_root / name)
            for key in local_keys[name]:
                assert _stable(name, reader.get(key)) == _stable(
                    name, local_reader.get(key)
                ), (name, key)


def _stable(segment_name, record):
    if segment_name != "graphs.seg":
        return record
    header, _, rest = record.partition(b"\n")
    parsed = json.loads(header)
    parsed.get("stats", {}).pop("mining_seconds", None)
    return json.dumps(parsed, sort_keys=True).encode() + b"\n" + rest


class TestServeStreaming:
    LOG = [
        "SELECT a FROM t WHERE x = 1",
        "SELECT a FROM t WHERE x = 2",
        "SELECT a FROM t WHERE x = 5",
        "SELECT b FROM u WHERE y = 3",
    ]

    def _events(self):
        return [
            ("stream-a", self.LOG[0]),
            ("stream-b", self.LOG[3]),
            ("stream-a", self.LOG[1]),
            ("stream-a", self.LOG[2]),
        ]

    def test_every_ack_is_streamed_before_drain_returns(self):
        streamed = []
        drained_at = []

        with SessionPool(pool_size=2) as pool:
            results = asyncio.run(
                pool.serve(self._events(), on_result=streamed.append)
            )
            drained_at.append(len(streamed))

        assert len(streamed) == 4
        assert drained_at == [4]  # all four delivered before drain returned
        # streamed acks carry the live interface at that point
        assert all(ack.result is not None for ack in streamed)
        by_client = {}
        for ack in streamed:
            by_client[ack.client_id] = ack.result
        # the *last* streamed result per client equals the drained one
        for client_id, result in results.items():
            assert (
                by_client[client_id].interface.widget_summary()
                == result.interface.widget_summary()
            )
        # per-client streaming order follows submit order
        a_counts = [
            ack.n_queries for ack in streamed if ack.client_id == "stream-a"
        ]
        assert a_counts == sorted(a_counts)

    def test_async_subscriber_is_awaited(self):
        streamed = []

        async def subscriber(ack):
            await asyncio.sleep(0)
            streamed.append(ack.client_id)

        with SessionPool(pool_size=2) as pool:
            asyncio.run(pool.serve(self._events(), on_result=subscriber))
        assert sorted(streamed) == ["stream-a", "stream-a", "stream-a", "stream-b"]

    def test_failed_appends_are_streamed_too(self):
        streamed = []
        with SessionPool(pool_size=1) as pool:
            asyncio.run(
                pool.serve(
                    [("bad", "SELEC nope"), ("bad", self.LOG[0])],
                    strict=False,
                    on_result=streamed.append,
                )
            )
        assert [ack.ok for ack in streamed] == [False, True]
        assert streamed[0].result is None
        assert streamed[1].result is not None

    def test_without_a_subscriber_results_stay_detached(self):
        """No subscriber, no per-append result pickling: the ack stream
        stays as cheap as before."""
        with SessionPool(pool_size=1) as pool:
            asyncio.run(pool.serve(self._events()))
            assert all(ack.result is None for ack in pool.acks())

    def test_subscription_is_scoped_to_one_serve_call(self):
        """Acks from before the streaming serve are not replayed into
        the subscriber, and later submits don't attach results."""
        streamed = []
        with SessionPool(pool_size=1) as pool:
            pool.submit("earlier", self.LOG[0])
            while pool.pending():
                time.sleep(0.02)
            asyncio.run(
                pool.serve(
                    [("scoped", self.LOG[1])], on_result=streamed.append
                )
            )
            assert [ack.client_id for ack in streamed] == ["scoped"]
            pool.submit("later", self.LOG[2])
            while pool.pending():
                time.sleep(0.02)
            later = [a for a in pool.acks() if a.client_id == "later"]
            assert later and later[0].result is None
