"""The store daemon: RPC round trips, lifecycle, fail-open, quotas.

The daemon's contract is *byte dumbness*: a ``GraphStore(remote=...)``
client must see exactly the records an in-process store would, because
the daemon only moves the same payload bytes the local layouts persist.
These tests drive the full client API through a live daemon, then
exercise what only the remote mode does: fail-open when the daemon dies
mid-session, re-attachment after a restart, stale-socket reclaim, and
per-client quota refusals that degrade to misses instead of falling
back to direct disk access (which would defeat the quota).
"""

import shutil
import socket
import tempfile
import time

import pytest

from repro.cache.blockstore import SegmentReader
from repro.cache.client import DaemonUnavailable, QuotaExceeded, StoreClient
from repro.cache.store import GraphStore
from repro.errors import CacheError, ServiceError
from repro.service import StoreDaemon, running_daemon
from tests.cache.test_packed_store import _mined, _save_all


@pytest.fixture
def sock_path():
    """A socket path short enough for AF_UNIX (~100-byte limit) —
    pytest's tmp_path nests too deep to be safe."""
    workdir = tempfile.mkdtemp(prefix="repro-sock-", dir="/tmp")
    yield f"{workdir}/d.sock"
    shutil.rmtree(workdir, ignore_errors=True)


@pytest.fixture
def payload():
    return _mined()


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestRoundTrip:
    def test_all_four_tables_through_the_daemon(self, tmp_path, sock_path, payload):
        daemon_root = tmp_path / "served"
        client_root = tmp_path / "client-side"
        with running_daemon(daemon_root, sock_path):
            store = GraphStore(client_root, remote=sock_path)
            assert store.format == "remote"
            assert store.remote == sock_path
            _save_all(store, payload)

            graph, _stats = store.load(payload["log_fp"], payload["opts_fp"])
            assert graph.summary() == payload["graph"].summary()
            widgets = store.load_widget_set(
                payload["log_fp"], payload["opts_fp"], graph,
                payload["options"].library, payload["options"].annotations,
            )
            assert len(widgets) == len(payload["widgets"])
            assert store.load_proof_triples(
                payload["log_fp"], payload["opts_fp"]
            )
            pairs = store.load_diff_memo_pairs(
                payload["log_fp"], payload["opts_fp"]
            )
            assert len(pairs) == payload["memo"].n_plans

            key = store.key(payload["log_fp"], payload["opts_fp"])
            assert store.keys() == [key]
            assert store.has(payload["log_fp"], payload["opts_fp"])

        # every byte landed in the daemon's directory, none in the
        # client's local root
        assert not list(client_root.glob("*")) or not any(
            p.stat().st_size for p in client_root.glob("*.seg")
        )
        assert SegmentReader(daemon_root / "graphs.seg").keys() == [key]

    def test_record_bytes_identical_to_in_process_store(
        self, tmp_path, sock_path, payload
    ):
        """The packed record a daemon persists is byte-for-byte the one
        an in-process packed store writes for the same save."""
        local = GraphStore(tmp_path / "local", format="packed")
        _save_all(local, payload)
        with running_daemon(tmp_path / "served", sock_path):
            remote = GraphStore(tmp_path / "unused", remote=sock_path)
            _save_all(remote, payload)
        key = local.key(payload["log_fp"], payload["opts_fp"])
        for name in ("graphs.seg", "widgets.seg", "proofs.seg", "diffmemos.seg"):
            assert (
                SegmentReader(tmp_path / "served" / name).get(key)
                == SegmentReader(tmp_path / "local" / name).get(key)
            ), name

    def test_two_clients_share_one_store(self, tmp_path, sock_path, payload):
        with running_daemon(tmp_path / "served", sock_path):
            writer = GraphStore(tmp_path / "a", remote=sock_path)
            reader = GraphStore(tmp_path / "b", remote=sock_path)
            _save_all(writer, payload)
            graph, _ = reader.load(payload["log_fp"], payload["opts_fp"])
            assert graph.summary() == payload["graph"].summary()

    def test_stats_reports_store_and_per_client_meters(
        self, tmp_path, sock_path, payload
    ):
        with running_daemon(tmp_path / "served", sock_path):
            store = GraphStore(tmp_path / "x", remote=sock_path)
            _save_all(store, payload)
            stats = store.stats()
            assert stats["n_keys"] == 1
            daemon_stats = stats["daemon"]
            assert daemon_stats["pid"] > 0
            assert daemon_stats["socket"] == sock_path
            clients = daemon_stats["clients"]
            assert len(clients) == 1
            meter = next(iter(clients.values()))
            assert meter["requests"] >= 4  # the four saves at minimum
            assert meter["bytes_in"] > 0
            assert meter["refused"] == 0

    def test_prune_and_invalidate_through_the_daemon(
        self, tmp_path, sock_path, payload
    ):
        with running_daemon(tmp_path / "served", sock_path):
            store = GraphStore(tmp_path / "x", remote=sock_path)
            _save_all(store, payload)
            removed = store.invalidate(payload["log_fp"], payload["opts_fp"])
            assert removed >= 1
            assert not store.has(payload["log_fp"], payload["opts_fp"])
            _save_all(store, payload)
            assert store.prune(max_entries=0) == 1
            assert store.keys() == []

    def test_migrate_through_a_daemon_is_refused(self, tmp_path, sock_path):
        with running_daemon(tmp_path / "served", sock_path):
            store = GraphStore(tmp_path / "x", remote=sock_path)
            with pytest.raises(CacheError, match="migrate"):
                store.migrate("json")


class TestLifecycle:
    def test_client_fails_open_when_daemon_dies(self, tmp_path, sock_path, payload):
        root = tmp_path / "store"
        daemon = StoreDaemon(root, sock_path)
        daemon.start()
        try:
            store = GraphStore(root, remote=sock_path)
            _save_all(store, payload)
        finally:
            daemon.stop()
        # daemon gone mid-session: the next operation falls open to the
        # local layout instead of erroring, and the fallback sees every
        # record the daemon persisted
        graph, _ = store.load(payload["log_fp"], payload["opts_fp"])
        assert graph.summary() == payload["graph"].summary()
        assert store.format == "packed"
        assert store.remote is None

    def test_fail_open_is_one_way(self, tmp_path, sock_path, payload):
        root = tmp_path / "store"
        daemon = StoreDaemon(root, sock_path)
        daemon.start()
        store = GraphStore(root, remote=sock_path)
        daemon.stop()
        store.save(payload["log_fp"], payload["opts_fp"], payload["graph"])
        assert store.format == "packed"
        # a recovered daemon must NOT pull this store back to remote
        # mode: flip-flopping would interleave two writers' lock domains
        with running_daemon(root, sock_path):
            assert store.has(payload["log_fp"], payload["opts_fp"])
            assert store.remote is None

    def test_new_client_reattaches_after_restart(self, tmp_path, sock_path, payload):
        root = tmp_path / "store"
        with running_daemon(root, sock_path):
            GraphStore(tmp_path / "a", remote=sock_path)
            first = GraphStore(tmp_path / "a2", remote=sock_path)
            _save_all(first, payload)
        with running_daemon(root, sock_path):
            fresh = GraphStore(tmp_path / "b", remote=sock_path)
            assert fresh.format == "remote"
            graph, _ = fresh.load(payload["log_fp"], payload["opts_fp"])
            assert graph.summary() == payload["graph"].summary()

    def test_stale_socket_file_is_reclaimed(self, tmp_path, sock_path):
        # a dead daemon leaves its socket file behind; binding must
        # replace it rather than fail with EADDRINUSE
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(sock_path)
        stale.close()  # closed without accept(): nobody answers here
        with running_daemon(tmp_path / "store", sock_path) as daemon:
            assert daemon.running
            assert StoreClient(sock_path).ping()["pid"] == daemon.daemon_stats()["pid"]

    def test_live_daemon_on_the_socket_is_an_error(self, tmp_path, sock_path):
        with running_daemon(tmp_path / "a", sock_path):
            with pytest.raises(ServiceError, match="already listening"):
                StoreDaemon(tmp_path / "b", sock_path)._claim_socket()

    def test_shutdown_rpc_stops_the_daemon(self, tmp_path, sock_path):
        daemon = StoreDaemon(tmp_path / "store", sock_path)
        daemon.start()
        client = StoreClient(sock_path)
        reply, _ = client.call("shutdown")
        assert reply["ok"]
        assert _wait_until(lambda: not daemon.running)
        daemon.stop()  # idempotent after an RPC shutdown

    def test_missing_daemon_constructor_fails_open(self, tmp_path, payload):
        """remote= pointing nowhere never blocks a worker: the store
        opens its local layout instead."""
        store = GraphStore(tmp_path / "store", remote="/tmp/no-such-daemon.sock")
        assert store.format == "packed"
        assert store.remote is None
        store.save(payload["log_fp"], payload["opts_fp"], payload["graph"])
        assert store.has(payload["log_fp"], payload["opts_fp"])


class TestQuota:
    def test_refusals_degrade_to_misses_without_falling_open(
        self, tmp_path, sock_path, payload
    ):
        root = tmp_path / "store"
        with running_daemon(root, sock_path, quota_requests=4):
            store = GraphStore(tmp_path / "x", remote=sock_path)  # ping: req 1
            store.save(payload["log_fp"], payload["opts_fp"], payload["graph"])
            assert store.has(payload["log_fp"], payload["opts_fp"])  # req 3
            assert store.load(payload["log_fp"], payload["opts_fp"])  # req 4
            # over quota now: reads become misses, writes no-ops — but
            # the store must NOT fall open to direct disk access, which
            # would hand the refused client the whole store
            assert store.load(payload["log_fp"], payload["opts_fp"]) is None
            assert not store.record_put(
                "graphs", "f" * 16 + "-" + "e" * 16, b'{"v": 1}\n'
            )
            assert store.format == "remote"
            # ping/stats stay unmetered so a refused client can see why
            stats = store.stats()
            meter = next(iter(stats["daemon"]["clients"].values()))
            assert meter["refused"] >= 2

    def test_quota_is_per_client(self, tmp_path, sock_path):
        key = "a" * 16 + "-" + "b" * 16
        with running_daemon(tmp_path / "store", sock_path, quota_requests=2):
            greedy = StoreClient(sock_path, client_id="greedy")
            frugal = StoreClient(sock_path, client_id="frugal")
            for _ in range(2):
                greedy.call("has", table="graphs", key=key)
            with pytest.raises(QuotaExceeded):
                greedy.call("has", table="graphs", key=key)
            # one client exhausting its quota must not starve another
            reply, _ = frugal.call("has", table="graphs", key=key)
            assert reply["ok"] and reply["found"] is False

    def test_byte_quota_refuses_large_clients(self, tmp_path, sock_path, payload):
        with running_daemon(tmp_path / "store", sock_path, quota_bytes=64):
            store = GraphStore(tmp_path / "x", remote=sock_path)
            # first save may exceed the cap mid-flight or be refused
            # outright; either way the follow-up must be refused and the
            # client must stay attached
            store.save(payload["log_fp"], payload["opts_fp"], payload["graph"])
            assert not store.record_put(
                "graphs", "a" * 16 + "-" + "b" * 16, b'{"v": 1}\n'
            )
            assert store.format == "remote"


class TestProtocol:
    def test_unknown_op_is_an_error_not_a_hangup(self, tmp_path, sock_path):
        with running_daemon(tmp_path / "store", sock_path):
            client = StoreClient(sock_path)
            with pytest.raises(CacheError, match="unknown op"):
                client.call("frobnicate")
            # the connection survives the refusal
            assert client.ping()["pid"] > 0

    def test_client_reconnects_after_a_dropped_connection(
        self, tmp_path, sock_path
    ):
        with running_daemon(tmp_path / "store", sock_path):
            client = StoreClient(sock_path)
            assert client.ping()
            client._drop()  # simulate a broken pipe
            assert client.ping()  # transparent reconnect

    def test_unreachable_socket_raises_daemon_unavailable(self):
        client = StoreClient("/tmp/absent-repro-daemon.sock")
        with pytest.raises(DaemonUnavailable):
            client.ping()
