"""Pool shutdown escalation: the close()/lock-lifecycle contract.

The old teardown fire-and-forgot: a worker wedged in ``flush_to_store``
was terminated *while holding the store flock*, and flush errors a
drain had queued but nobody collected were silently dropped.  These
tests pin the repaired lifecycle: flushes run under a deadline, a
terminated worker unwinds via ``SystemExit`` (SIGTERM handler) instead
of dying mid-write, ``close()`` reports exactly what was not published,
and the store lock is always acquirable afterwards — no orphaned
``.lock`` holder survives a shutdown, wedged or not.
"""

import fcntl
import time

import pytest

from repro.cache.lock import LOCK_FILE_NAME
from repro.cache.store import GraphStore
from repro.core.options import PipelineOptions
from repro.errors import ServiceError
from repro.service import SessionPool

LOG = [
    "SELECT a FROM t WHERE x = 1",
    "SELECT a FROM t WHERE x = 2",
    "SELECT a FROM t WHERE x = 5",
]


class _GlacialBatch:
    """A batch whose iteration wedges the worker mid-append (pickles by
    reference; the forked worker imports this module)."""

    def __iter__(self):
        time.sleep(60)
        return iter(())


def _wait_for_acks(pool, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pool.pending() == 0:
            return
        time.sleep(0.05)
    raise AssertionError(f"{pool.pending()} appends still pending")


def _assert_lock_acquirable(store_root):
    """The shutdown left no flock holder behind."""
    with open(store_root / LOCK_FILE_NAME, "a+") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


class TestCleanClose:
    def test_close_flushes_sessions_and_reports_clean(self, tmp_path):
        cache_dir = tmp_path / "store"
        options = PipelineOptions(cache_dir=str(cache_dir))
        pool = SessionPool(options=options, pool_size=2)
        pool.submit("clean-a", LOG)
        pool.submit("clean-b", LOG[0])
        _wait_for_acks(pool)
        report = pool.close()
        assert report.clean
        assert report.flush_errors == ()
        assert report.unflushed_clients == ()
        assert report.terminated_workers == ()
        # close() published the sessions even though nobody drained
        assert GraphStore(cache_dir).stats()["n_graphs"] == 2
        _assert_lock_acquirable(cache_dir)

    def test_close_is_idempotent_and_returns_the_same_report(self, tmp_path):
        pool = SessionPool(pool_size=1)
        pool.submit("idem", LOG[0])
        first = pool.close()
        assert pool.close() is first
        with pytest.raises(ServiceError):
            pool.submit("idem", LOG[1])


class TestWedgedFlush:
    def test_flush_wedged_on_the_store_lock_misses_the_deadline(self, tmp_path):
        """A worker whose close-flush blocks on a held flock reports the
        unpublished clients and exits — and no lock holder is orphaned."""
        cache_dir = tmp_path / "store"
        options = PipelineOptions(cache_dir=str(cache_dir))
        pool = SessionPool(options=options, pool_size=1)
        pool.submit("wedge-c", LOG)
        _wait_for_acks(pool)

        holder = open(cache_dir / LOCK_FILE_NAME, "a+")
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
        try:
            report = pool.close(flush_timeout=1.0)
        finally:
            fcntl.flock(holder.fileno(), fcntl.LOCK_UN)
            holder.close()

        assert not report.clean
        assert report.unflushed_clients == ("wedge-c",)
        # the worker answered in time (the flush thread missed the
        # deadline, not the worker) — nothing had to be terminated
        assert report.terminated_workers == ()
        _assert_lock_acquirable(cache_dir)
        # nothing was published: the graph never reached the store
        assert GraphStore(cache_dir).stats()["n_graphs"] == 0

    def test_worker_wedged_in_an_append_is_terminated(self, tmp_path):
        """A worker that cannot even answer the close sentinel is
        escalated to SIGTERM, and its clients are reported unflushed."""
        cache_dir = tmp_path / "store"
        options = PipelineOptions(cache_dir=str(cache_dir))
        pool = SessionPool(options=options, pool_size=1)
        pool.submit("stuck", _GlacialBatch())
        report = pool.close(flush_timeout=0.5)
        assert not report.clean
        assert len(report.terminated_workers) == 1
        assert "stuck" in report.unflushed_clients
        _assert_lock_acquirable(cache_dir)

    def test_sigterm_unwinds_a_worker_instead_of_killing_it(self):
        """``Process.terminate()`` lands as ``SystemExit(143)`` — the
        worker's ``finally``/``with lock.held()`` blocks run, which is
        what releases a held flock before the process dies."""
        pool = SessionPool(pool_size=1)
        pool.submit("sig", LOG[0])
        _wait_for_acks(pool)
        worker = pool._workers[0]
        worker.terminate()  # idle in inbox.get(): the handler fires there
        worker.join(timeout=10)
        assert worker.exitcode == 143
        report = pool.close()
        # the dead worker's clients were (potentially) unpublished
        assert "sig" in report.unflushed_clients


class TestFlushErrorReporting:
    def test_uncollected_drain_flush_errors_survive_close(self, tmp_path):
        """Regression: a drain reply left in the outbox (e.g. a serve()
        cancelled between worker reply and collection) used to vanish at
        teardown together with its flush errors."""
        pool = SessionPool(pool_size=1)
        pool.submit("orphan-err", LOG[0])
        _wait_for_acks(pool)
        pool._outbox.put(("drained", 0, -1, {}, ["orphan-err: flock timeout"]))
        pool.close()
        assert "orphan-err: flock timeout" in pool.flush_errors()

    def test_close_reports_store_publication_failures(self, tmp_path):
        """A flush that *fails* (rather than wedges) lands in the
        report's flush_errors with the client named."""
        import shutil

        cache_dir = tmp_path / "store"
        options = PipelineOptions(cache_dir=str(cache_dir))
        pool = SessionPool(options=options, pool_size=1)
        pool.submit("doomed", LOG)
        _wait_for_acks(pool)
        # sabotage the store root: the directory becomes a file, so the
        # close-flush cannot even open the lock
        shutil.rmtree(cache_dir)
        cache_dir.write_text("not a directory\n", encoding="utf-8")
        report = pool.close()
        assert any(err.startswith("doomed:") for err in report.flush_errors)
        assert any(err.startswith("doomed:") for err in pool.flush_errors())
