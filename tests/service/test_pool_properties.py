"""Property-based parity: pooled, streamed, and one-shot generation are
result-equivalent on randomized multi-client workloads.

The service layer's core claim is that sharding sessions across worker
processes is *pure plumbing* — for every client, whatever the batch
split and however clients interleave, the drained interface equals what
one-shot :func:`repro.api.generate` produces over the client's
concatenated log, and the two interfaces answer closure-membership
questions identically.  Hypothesis drives that claim across random
template traffic (see ``tests.strategies.session_workloads``).

One pool is shared across examples (worker start-up is the expensive
part); isolation comes from example-unique client ids.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings

from repro.api import InterfaceSession, generate
from repro.service import SessionPool
from tests.strategies import session_workloads

_EXAMPLE_COUNTER = itertools.count()


@pytest.fixture(scope="module")
def pool():
    with SessionPool(pool_size=2, queue_depth=4) as shared:
        yield shared


def _probe_statements(statements):
    """Closure-membership probes: every logged query plus an unseen
    variation of the first one (same template, fresh literal)."""
    probes = list(dict.fromkeys(statements))[:4]
    probes.append(statements[0].replace("=", "= 987 + ").replace("= 987 + =", "="))
    # the synthetic mutation above may not parse for every template;
    # keep only parseable probes
    from repro import parse_sql
    from repro.errors import ReproError

    out = []
    for probe in probes:
        try:
            parse_sql(probe)
        except ReproError:
            continue
        out.append(probe)
    return out


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(workload=session_workloads())
def test_pool_stream_and_one_shot_agree(pool, workload):
    example = next(_EXAMPLE_COUNTER)
    # --- one-shot ----------------------------------------------------
    one_shot = {
        client: generate(statements)
        for client, (statements, _batches) in workload.items()
    }
    # --- streamed session (same batch split) -------------------------
    streamed = {}
    for client, (_statements, batches) in workload.items():
        session = InterfaceSession()
        for snapshot in session.stream(batches):
            streamed[client] = snapshot
    # --- pooled (batches interleaved round-robin across clients) -----
    pool_ids = {
        client: f"hyp-{example}-{client}" for client in workload
    }
    pending = {client: list(batches) for client, (_s, batches) in workload.items()}
    while pending:
        for client in list(pending):
            pool.submit(pool_ids[client], pending[client].pop(0))
            if not pending[client]:
                del pending[client]
    drained = pool.drain()
    pool.release(list(pool_ids.values()))

    for client, (statements, batches) in workload.items():
        expected = one_shot[client]
        result_stream = streamed[client]
        result_pool = drained[pool_ids[client]]
        # identical widget sets (type, path, domain size)
        assert (
            result_stream.interface.widget_summary()
            == expected.interface.widget_summary()
        ), (client, batches)
        assert (
            result_pool.interface.widget_summary()
            == expected.interface.widget_summary()
        ), (client, batches)
        # identical closure answers on seen and unseen probes
        for probe in _probe_statements(statements):
            from repro import parse_sql

            ast = parse_sql(probe)
            verdict = expected.interface.expresses(ast)
            assert result_stream.interface.expresses(ast) == verdict, probe
            assert result_pool.interface.expresses(ast) == verdict, probe
