"""Interval-index staleness hunt under interleaved append/resume cycles.

Marked ``stress``: excluded from the default (tier-1) run by the
``-m "not stress"`` addopts and executed by CI's dedicated stress job
(``pytest -m stress``).

Worker threads drive the same template-traffic log through
:class:`~repro.api.InterfaceSession` appends, randomly snapshotting and
resuming — including *cross-thread* resumes, where a worker abandons its
session and picks up the latest snapshot some other worker published.
Every resume rebuilds the MapCache interval index from scratch (interval
annotations are derived state, never persisted), so the interleaving
hammers exactly the seam where a stale revision vector could hide: a
window-memo or component-memo entry recorded by one incarnation being
consulted by an index rebuilt in another.

The invariants checked after **every** append and resume:

* the interval annotations satisfy the full nesting/disjointness/size
  contract (``check_invariants``);
* the per-path revision counters and the Fenwick revision mass agree —
  the window sums the merge layer trusts are exactly the dirtiness the
  partition index recorded;
* no memoised component signature exceeds its live window revision
  (revisions only grow, so a larger stored signature is impossible
  unless state leaked across incarnations);
* at the end of each worker's schedule the widget summary equals a
  one-shot build of the same log — the observable that a stale window
  replay would corrupt.
"""

import random
import threading

import pytest

from repro.api import InterfaceSession, generate
from repro.sqlparser import parse_sql

pytestmark = pytest.mark.stress

N_THREADS = 4
N_CYCLES = 3
STEP = 5


def _log():
    """Template traffic with a hot literal and a nested clean subtree —
    the workload that actually exercises window-memo replays."""
    statements = (
        ["SELECT g, SUM(m) FROM t GROUP BY g"]
        + [
            f"SELECT a, b FROM t WHERE x = 0 AND f(y, {j}) = 5"
            for j in range(5)
        ]
        + [
            "SELECT a, b FROM t WHERE x = 0 AND z = 5",
            "SELECT a, b FROM t WHERE x = 0 AND f(y, 2) = 5",
        ]
        + [
            f"SELECT a, b FROM t WHERE x = {value} AND f(y, 3) = 5"
            for value in range(40)
        ]
    )
    return [parse_sql(s) for s in statements]


def _check_cache(session, errors, where):
    cache = session._map_cache
    index = cache.index
    try:
        index.intervals.check_invariants()
        for path, rev in index.rev.items():
            if index.intervals.revision_of(path) != rev:
                raise AssertionError(
                    f"revision vector out of sync at {path}: "
                    f"{index.intervals.revision_of(path)} != {rev}"
                )
        for root, (signature, _) in cache.merge.items():
            live = index.window_revision(root)
            if signature > live:
                raise AssertionError(
                    f"stale component signature at {root}: "
                    f"memoised {signature} > live window revision {live}"
                )
    except AssertionError as exc:
        errors.append(f"{where}: {exc}")


def _worker(thread_idx, asts, tmp_path, latest, lock, expected, errors):
    rng = random.Random(thread_idx)
    for cycle in range(N_CYCLES):
        session = InterfaceSession()
        consumed = 0
        while consumed < len(asts):
            session.append(asts[consumed : consumed + STEP])
            consumed = len(session)
            _check_cache(
                session, errors, f"t{thread_idx} c{cycle} append@{consumed}"
            )
            if consumed < len(asts) and rng.random() < 0.4:
                snap = tmp_path / f"snap-{thread_idx}.jsonl"
                session.save(snap)
                with lock:
                    latest[thread_idx] = snap
                    # sometimes adopt another worker's snapshot instead
                    # of our own — the cross-incarnation interleaving
                    candidates = list(latest.values())
                resume_from = (
                    rng.choice(candidates) if rng.random() < 0.5 else snap
                )
                session = InterfaceSession.resume(resume_from)
                consumed = len(session)
                _check_cache(
                    session,
                    errors,
                    f"t{thread_idx} c{cycle} resume@{consumed}",
                )
        summary = session.interface.widget_summary()
        if summary != expected:
            errors.append(
                f"t{thread_idx} c{cycle}: widget summary diverged from "
                f"one-shot build after append/resume interleaving"
            )


def test_interleaved_append_resume_never_goes_stale(tmp_path):
    asts = _log()
    expected = generate(asts).interface.widget_summary()
    errors: list[str] = []
    latest: dict[int, object] = {}
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=_worker,
            args=(i, asts, tmp_path, latest, lock, expected, errors),
        )
        for i in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, "\n".join(errors)
