"""Property harness for the interval-encoded tree index.

The mapping layer replaced its path-string prefix relation with
``(pre_order, post_order, subtree_size)`` interval annotations
(:class:`repro.treediff.paths.IntervalIndex`); everything downstream —
component discovery, dirty-window signatures, merge-step memo keys — is
only sound if the encoding is *exactly* the prefix relation.  This suite
pins that with Hypothesis:

* containment ⟺ ``is_strict_prefix_of`` on random path sets;
* the XPath-accelerator invariants (interval nesting, disjointness,
  subtree-size consistency, pre/post agreement) hold after **every**
  incremental update, not just on a freshly built index;
* window queries equal the prefix-filter they replace;
* window revision sums are strictly monotone under bumps inside the
  window and invariant under bumps outside it — the property that makes
  a stale clean-window verdict impossible by construction.

The :class:`~repro.core.mapper.PartitionIndex` integration (including
the append-only spot-check fix) is covered at the bottom.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.mapper import MapCache, PartitionIndex
from repro.errors import MappingError, PathError
from repro.graph.build import build_interaction_graph, extend_interaction_graph
from repro.paths import Path
from repro.treediff.paths import IntervalIndex
from repro.logs import AdhocLogGenerator
from tests.strategies import path_batches, path_sets


def build_index(step_tuples) -> tuple[IntervalIndex, list[Path]]:
    index = IntervalIndex()
    paths = [Path(steps) for steps in step_tuples]
    index.extend(paths)
    return index, paths


class TestContainmentEquivalence:
    @given(path_sets())
    def test_strict_containment_iff_strict_prefix(self, step_tuples):
        index, paths = build_index(step_tuples)
        for a in paths:
            for b in paths:
                assert index.strictly_contains(a, b) == a.is_strict_prefix_of(
                    b
                ), (a, b)

    @given(path_sets())
    def test_containment_iff_prefix(self, step_tuples):
        index, paths = build_index(step_tuples)
        for a in paths:
            for b in paths:
                assert index.contains(a, b) == a.is_prefix_of(b), (a, b)

    @given(path_sets())
    def test_window_query_equals_prefix_scan(self, step_tuples):
        """The window query is the replacement for the prefix filter the
        old mapper ran per component — they must select the same paths."""
        index, paths = build_index(step_tuples)
        for root in paths:
            window = set(index.window_paths(root))
            scan = {p for p in paths if root.is_prefix_of(p)}
            assert window == scan, root
            strict_window = set(index.window_paths(root, strict=True))
            assert strict_window == scan - {root}, root


class TestIncrementalInvariants:
    @given(path_batches())
    def test_invariants_hold_after_every_update(self, batches):
        """Nesting, disjointness, subtree sizes, and pre/post agreement
        are re-checked after every incremental extend — renumbering must
        never leave a half-updated annotation behind."""
        index = IntervalIndex()
        for batch in batches:
            index.extend(Path(steps) for steps in batch)
            index.check_invariants()

    @given(path_batches())
    def test_incremental_equals_bulk_build(self, batches):
        """Order of arrival must not matter: the annotations after any
        arrival schedule equal a one-shot build over the same path set."""
        incremental = IntervalIndex()
        for batch in batches:
            incremental.extend(Path(steps) for steps in batch)
        bulk = IntervalIndex()
        bulk.extend(
            Path(steps) for batch in batches for steps in batch
        )
        assert incremental.annotations() == bulk.annotations()

    @given(path_sets())
    def test_pre_post_size_agree(self, step_tuples):
        """The three annotations encode the same tree: the pre+size
        window and the pre/post containment test select identical
        descendant sets, and post orders every subtree before its root."""
        index, paths = build_index(step_tuples)
        annot = index.annotations()
        for a in paths:
            ia = annot[a]
            for b in paths:
                ib = annot[b]
                by_window = (
                    ia.pre_order
                    < ib.pre_order
                    < ia.pre_order + ia.subtree_size
                )
                by_post = (
                    ia.pre_order < ib.pre_order
                    and ib.post_order < ia.post_order
                )
                assert by_window == by_post, (a, b)


class TestWindowRevision:
    @given(path_batches(), st.data())
    def test_bumps_move_exactly_the_enclosing_windows(self, batches, data):
        """A bump at path p increases the window sum of exactly the
        indexed ancestors-or-self of p — clean sibling windows keep their
        sum, which is why an unchanged sum proves a window clean."""
        index = IntervalIndex()
        for batch in batches:
            index.extend(Path(steps) for steps in batch)
        paths = index.ordered_paths()
        target = data.draw(st.sampled_from(paths))
        before = {p: index.window_revision(p) for p in paths}
        index.bump(target)
        for p in paths:
            moved = index.window_revision(p) != before[p]
            assert moved == p.is_prefix_of(target), (p, target)
            if moved:
                assert index.window_revision(p) == before[p] + 1

    @given(path_batches())
    def test_window_sum_is_monotone_under_updates(self, batches):
        """Across an arbitrary arrival schedule (new paths and re-touched
        ones interleaved), no window's revision sum ever decreases."""
        index = IntervalIndex()
        history: dict[Path, int] = {}
        for batch in batches:
            paths = [Path(steps) for steps in batch]
            index.extend(paths)
            for path in paths:
                index.bump(path)
            for path in index.ordered_paths():
                current = index.window_revision(path)
                assert current >= history.get(path, 0), path
                history[path] = current

    def test_bump_requires_indexed_path(self):
        index = IntervalIndex()
        index.extend([Path((0,))])
        with pytest.raises(PathError):
            index.bump(Path((1,)))

    def test_interval_requires_indexed_path(self):
        index = IntervalIndex()
        with pytest.raises(PathError):
            index.interval(Path(()))


class TestPartitionIndexIntegration:
    def _graph(self, n=30):
        asts = AdhocLogGenerator(seed=5).student_log("S1", n).asts()
        return build_interaction_graph(asts, window=2), asts

    def test_partition_paths_are_interval_indexed(self):
        graph, _ = self._graph()
        index = PartitionIndex()
        index.update(graph.diffs)
        assert set(index.ordered_paths()) == set(index.by_path)
        assert index.ordered_paths() == sorted(index.by_path)
        index.intervals.check_invariants()
        # one update = one revision per touched path, mirrored in the
        # Fenwick mass so window sums see exactly the same dirtiness
        for path in index.by_path:
            assert index.intervals.revision_of(path) == index.rev[path]

    def test_window_revision_tracks_appends(self):
        graph, asts = self._graph(30)
        more = AdhocLogGenerator(seed=6).student_log("S1", 10).asts()
        index = PartitionIndex()
        index.update(graph.diffs)
        root = Path(())
        if root not in index.intervals:
            pytest.skip("no root partition in this log")
        before = index.window_revision(root)
        extend_interaction_graph(graph, more, window=2)
        touched = index.update(graph.diffs)
        assert touched
        # the root window contains every path, so its sum must move
        assert index.window_revision(root) > before

    # ------------------------------------------------------------------
    # regression: mutated already-consumed entries (satellite fix)
    # ------------------------------------------------------------------
    def test_update_rejects_mutated_consumed_prefix(self):
        """`update` raised on a *shrunken* table but silently accepted a
        table whose consumed prefix had been replaced — the spot-check
        must catch both common corruptions."""
        graph, _ = self._graph()
        index = PartitionIndex()
        index.update(graph.diffs)
        # replaced first entry (e.g. a caller re-built the table)
        mutated = list(graph.diffs)
        mutated[0] = mutated[-1]
        with pytest.raises(MappingError, match="consumed"):
            index.update(mutated)
        # reordered prefix (e.g. a caller re-sorted in place)
        reordered = list(reversed(graph.diffs))
        with pytest.raises(MappingError, match="consumed"):
            index.update(reordered)

    def test_update_rejects_shrunken_table(self):
        graph, _ = self._graph()
        index = PartitionIndex()
        index.update(graph.diffs)
        with pytest.raises(MappingError, match="shrank"):
            index.update(graph.diffs[:-1])

    def test_update_accepts_genuine_append(self):
        graph, asts = self._graph(30)
        index = PartitionIndex()
        half = len(graph.diffs) // 2
        index.update(graph.diffs[:half])
        touched = index.update(graph.diffs)
        assert index.n_consumed == len(graph.diffs)
        assert touched <= set(index.by_path)

    def test_map_cache_clear_resets_interval_state(self):
        graph, _ = self._graph()
        cache = MapCache()
        cache.index.update(graph.diffs)
        memo = cache.window_memo()
        assert memo.index is cache.index
        cache.clear()
        assert len(cache.index.intervals) == 0
        assert cache.windows is None
        # a fresh window memo binds to the fresh index
        assert cache.window_memo().index is cache.index
