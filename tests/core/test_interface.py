"""Interface model tests (Section 4.4 metrics and presentation)."""

from tests.helpers import generate_iface
from repro import parse_sql
from repro.logs import LISTING_6



def make_interface():
    return generate_iface(list(LISTING_6))


class TestMetrics:
    def test_cost_sums_widgets(self):
        interface = make_interface()
        assert interface.cost == sum(w.cost for w in interface.widgets)

    def test_expressiveness_empty_log_is_one(self):
        assert make_interface().expressiveness([]) == 1.0

    def test_expressiveness_counts_fraction(self):
        interface = make_interface()
        queries = [parse_sql(LISTING_6[0]), parse_sql("SELECT zz FROM unrelated")]
        assert interface.expressiveness(queries) == 0.5

    def test_initial_query_is_earliest(self):
        interface = make_interface()
        assert interface.initial_query == parse_sql(LISTING_6[0])


class TestPresentation:
    def test_describe_mentions_every_widget(self):
        interface = make_interface()
        text = interface.describe()
        for widget in interface.widgets:
            assert widget.widget_type.name in text

    def test_widget_summary_sorted_by_path(self):
        summary = make_interface().widget_summary()
        paths = [path for _name, path, _size in summary]
        assert paths == sorted(paths, key=lambda p: (p.count("/"), p))

    def test_describe_contains_initial_sql(self):
        interface = make_interface()
        assert "SELECT" in interface.describe()
