"""Closure membership and enumeration tests."""

from tests.helpers import generate_iface
from repro import parse_sql
from repro.core.closure import apply_widget_choice, enumerate_closure
from repro.logs import LISTING_6, LISTING_7
from repro.sqlparser.render import render_sql



class TestMembershipListing6(object):
    def test_log_queries_expressible(self, listing6_interface):
        for sql in LISTING_6:
            assert listing6_interface.expresses(parse_sql(sql))

    def test_unseen_top_value_via_slider(self, listing6_interface):
        unseen = LISTING_6[1].replace("TOP 1 ", "TOP 7 ")
        assert listing6_interface.expresses(parse_sql(unseen))

    def test_out_of_range_top_rejected(self, listing6_interface):
        beyond = LISTING_6[1].replace("TOP 1 ", "TOP 999 ")
        assert not listing6_interface.expresses(parse_sql(beyond))

    def test_unrelated_query_rejected(self, listing6_interface):
        assert not listing6_interface.expresses(parse_sql("SELECT x FROM other"))


class TestMembershipListing7:
    def test_log_queries_expressible(self, listing7_interface):
        for sql in LISTING_7:
            assert listing7_interface.expresses(parse_sql(sql))

    def test_cross_product_generalisation(self, listing7_interface):
        """The combination {projection b, threshold 15} never occurs in
        Listing 7 but is in the closure (Section 4.5 discussion)."""
        unseen = parse_sql("SELECT * FROM (SELECT b FROM T WHERE b > 15)")
        assert listing7_interface.expresses(unseen)

    def test_nested_coverage_through_toggle(self, listing7_interface):
        """Expressing a subquery variant from the plain-table q0 needs the
        toggle + inner widgets composition."""
        assert listing7_interface.expresses(
            parse_sql("SELECT * FROM (SELECT a FROM T WHERE b > 20)")
        )


class TestEnumeration:
    def test_closure_contains_initial_query(self, listing6_interface):
        queries = list(listing6_interface.closure(limit=100))
        assert any(q.equals(listing6_interface.initial_query) for q in queries)

    def test_closure_entries_distinct(self, listing6_interface):
        queries = list(listing6_interface.closure(limit=100))
        prints = [q.fingerprint for q in queries]
        assert len(prints) == len(set(prints))

    def test_limit_respected(self, listing7_interface):
        assert len(list(listing7_interface.closure(limit=3))) <= 3

    def test_closure_members_expressible(self, listing7_interface):
        """Everything enumerated must pass the membership test."""
        for query in listing7_interface.closure(limit=50):
            assert listing7_interface.expresses(query), render_sql(query)

    def test_log_queries_in_enumerated_closure(self, listing6_interface):
        enumerated = {q.fingerprint for q in listing6_interface.closure(limit=1000)}
        for sql in LISTING_6:
            assert parse_sql(sql).fingerprint in enumerated


class TestApplyWidgetChoice:
    def _interface(self):
        return generate_iface(list(LISTING_6))

    def test_replace(self):
        interface = self._interface()
        slider = next(
            w for w in interface.widgets if w.widget_type.name == "slider"
        )
        with_top = parse_sql(LISTING_6[1])
        entry = next(iter(slider.domain.subtrees()))
        edited = apply_widget_choice(with_top, slider, entry)
        assert edited.get(slider.path).equals(entry)

    def test_insert_when_path_missing(self):
        interface = self._interface()
        toggle = next(
            w for w in interface.widgets if w.domain.includes_none
        )
        without_top = parse_sql(LISTING_6[0])
        entry = next(iter(toggle.domain.subtrees()))
        edited = apply_widget_choice(without_top, toggle, entry)
        assert edited.has_path(toggle.path)
        assert edited.get(toggle.path).node_type == "Top"

    def test_delete_with_none(self):
        interface = self._interface()
        toggle = next(w for w in interface.widgets if w.domain.includes_none)
        with_top = parse_sql(LISTING_6[1])
        edited = apply_widget_choice(with_top, toggle, None)
        assert edited.equals(parse_sql(LISTING_6[0]))

    def test_delete_noop_when_absent(self):
        interface = self._interface()
        toggle = next(w for w in interface.widgets if w.domain.includes_none)
        without_top = parse_sql(LISTING_6[0])
        assert apply_widget_choice(without_top, toggle, None) is without_top
