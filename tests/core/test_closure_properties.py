"""Property tests on the closure invariants.

The key soundness property: everything :func:`enumerate_closure` produces
must pass the :func:`expresses` membership test (the two views of the
closure agree), and the initial query is always a member.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import generate_iface
from repro.sqlparser.render import render_sql


_TABLES = ["SpecLineIndex", "XCRedshift"]
_VALUES = [1, 2, 5, 9]


@st.composite
def structured_logs(draw):
    """Small logs in the Listing 1 shape with varying tables/values."""
    n = draw(st.integers(min_value=2, max_value=6))
    statements = []
    for _ in range(n):
        table = draw(st.sampled_from(_TABLES))
        value = draw(st.sampled_from(_VALUES))
        statements.append(f"SELECT * FROM {table} WHERE specObjId = {value}")
    return statements


@settings(max_examples=30, deadline=None)
@given(structured_logs())
def test_enumerated_closure_members_are_expressible(statements):
    interface = generate_iface(statements)
    for query in interface.closure(limit=40):
        assert interface.expresses(query), render_sql(query)


@settings(max_examples=30, deadline=None)
@given(structured_logs())
def test_initial_query_always_in_closure(statements):
    interface = generate_iface(statements)
    assert interface.expresses(interface.initial_query)


@settings(max_examples=30, deadline=None)
@given(structured_logs())
def test_log_queries_expressible(statements):
    """g = 1: the generated interface expresses its own log."""
    from repro import parse_sql

    interface = generate_iface(statements)
    for sql in statements:
        assert interface.expresses(parse_sql(sql)), sql


@settings(max_examples=25, deadline=None)
@given(structured_logs(), st.integers(min_value=0, max_value=3))
def test_expressiveness_between_zero_and_one(statements, seed):
    interface = generate_iface(statements)
    from repro import parse_sql

    probes = [parse_sql(s) for s in statements] + [
        parse_sql(f"SELECT unrelated{seed} FROM other{seed}")
    ]
    value = interface.expressiveness(probes)
    assert 0.0 <= value <= 1.0