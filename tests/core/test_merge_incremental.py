"""Parity suite: the partition-scoped incremental merge must be
result-equivalent to the global fixed point on every bundled log family
(acceptance criterion of the incremental-generation refactor).

Two layers are exercised:

* mapper level — ``initialize_indexed`` + ``merge_widgets_incremental``
  driven through a growing graph equals ``initialize`` +
  ``merge_widgets`` from scratch at every step;
* session level — ``InterfaceSession.append()`` equals one-shot
  ``generate()`` over the concatenated log, both in widget set and in
  closure membership over a recall suite of seen and held-out queries.
"""

import pytest

from repro.api import InterfaceSession, generate
from repro.core.mapper import (
    MapCache,
    initialize,
    initialize_indexed,
    merge_widgets,
    merge_widgets_incremental,
)
from repro.core.options import PipelineOptions
from repro.graph.build import build_interaction_graph, extend_interaction_graph
from repro.logs import AdhocLogGenerator, OLAPLogGenerator, SDSSLogGenerator
from repro.logs.sessions import segment_asts


def _family_log(family: str) -> list:
    if family == "sdss":
        return SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 80).asts()
    if family == "olap":
        return OLAPLogGenerator(seed=1).generate(80).asts()
    if family == "adhoc":
        return AdhocLogGenerator(seed=2).student_log("S1", 70).asts()
    if family == "sessions":
        # the interleaved multi-analysis log the sessions module segments;
        # exercise the segmentation layer, then mine the largest analysis
        mixed = SDSSLogGenerator(seed=3).interleaved(3, 25).asts()
        return max(segment_asts(mixed, 0.3, 0.3), key=len)
    raise AssertionError(family)


FAMILIES = ["sdss", "olap", "adhoc", "sessions"]


def summary(widgets):
    return [(w.widget_type.name, str(w.path), w.domain.size) for w in widgets]


class TestMapperParity:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_incremental_equals_global_at_every_append(self, family):
        asts = _family_log(family)
        options = PipelineOptions(window=4)
        cache = MapCache()
        graph = build_interaction_graph(asts[: len(asts) // 2], window=4)
        cache.index.update(graph.diffs)
        step = max(1, len(asts) // 10)
        checkpoints = list(range(len(asts) // 2, len(asts), step))
        for start in checkpoints:
            extend_interaction_graph(graph, asts[start : start + step], window=4)
            cache.index.update(graph.diffs)
            widgets, _, _ = initialize_indexed(
                cache, options.library, options.annotations
            )
            merged, _, _ = merge_widgets_incremental(
                widgets, options.library, options.annotations, cache
            )
            # reference: full build of the same accumulated log
            reference_diffs = sorted(graph.diffs, key=lambda d: (d.q1, d.q2))
            reference = merge_widgets(
                initialize(reference_diffs, options.library, options.annotations),
                options.library,
                options.annotations,
                leaf_diffs=[d for d in reference_diffs if d.is_leaf],
            )
            assert summary(merged) == summary(reference)

    def test_clean_components_are_reused(self):
        """The dirty-set worklist must actually shrink work: on a log with
        several independent merge components, appends that touch a subset
        leave the rest memoised."""
        asts = AdhocLogGenerator(seed=2).student_log("S1", 120).asts()
        options = PipelineOptions()
        session_cache = MapCache()
        graph = build_interaction_graph(asts[:100], window=2)
        session_cache.index.update(graph.diffs)
        widgets, _, _ = initialize_indexed(
            session_cache, options.library, options.annotations
        )
        merge_widgets_incremental(
            widgets, options.library, options.annotations, session_cache
        )
        reused_total = 0
        for start in range(100, 120, 4):
            extend_interaction_graph(graph, asts[start : start + 4], window=2)
            session_cache.index.update(graph.diffs)
            widgets, n_reused_paths, _ = initialize_indexed(
                session_cache, options.library, options.annotations
            )
            _, n_reused, n_merged = merge_widgets_incremental(
                widgets, options.library, options.annotations, session_cache
            )
            assert n_reused + n_merged >= 1
            assert n_reused_paths > 0  # untouched partitions reuse widgets
            reused_total += n_reused
        assert reused_total > 0  # some components replayed their memo


class TestSessionParity:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_session_appends_equal_one_shot(self, family):
        asts = _family_log(family)
        session = InterfaceSession()
        step = max(1, len(asts) // 6)
        result = None
        for start in range(0, len(asts), step):
            result = session.append(asts[start : start + step])
        full = generate(asts)
        assert (
            result.interface.widget_summary() == full.interface.widget_summary()
        )
        assert result.interface.cost == pytest.approx(full.interface.cost)
        # pair-set identity: the session aligned exactly the pairs one
        # full build over the concatenated log would have
        assert session.n_pairs_compared == full.run.n_pairs_compared

    @pytest.mark.parametrize("family", FAMILIES)
    def test_closure_membership_parity_on_recall_suite(self, family):
        """Same widget set must mean same closure: membership verdicts for
        seen queries and structurally-near held-out queries agree between
        the incremental and the one-shot interface."""
        asts = _family_log(family)
        split = (len(asts) * 3) // 4
        session = InterfaceSession()
        step = max(1, split // 4)
        for start in range(0, split, step):
            session.append(asts[start : start + step])
        full = generate(asts[:split])
        suite = asts[:split][:10] + asts[split:][:10]
        incremental_verdicts = [session.expresses(q) for q in suite]
        one_shot_verdicts = [full.interface.expresses(q) for q in suite]
        assert incremental_verdicts == one_shot_verdicts
        # every seen query is expressible (the paper's g = 1 guarantee)
        assert all(incremental_verdicts[: len(asts[:split][:10])])

    def test_merge_stage_reports_component_counters(self):
        asts = _family_log("adhoc")
        session = InterfaceSession()
        session.append(asts[:50])
        second = session.append(asts[50:])
        stats = second.run.stage("merge").stats
        assert stats["n_components"] >= 1
        assert (
            stats["n_components_reused"] + stats["n_components_merged"]
            == stats["n_components"]
        )
