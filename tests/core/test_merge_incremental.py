"""Parity suite: the partition-scoped incremental merge must be
result-equivalent to the global fixed point on every bundled log family
(acceptance criterion of the incremental-generation refactor).

Two layers are exercised:

* mapper level — ``initialize_indexed`` + ``merge_widgets_incremental``
  driven through a growing graph equals ``initialize`` +
  ``merge_widgets`` from scratch at every step;
* session level — ``InterfaceSession.append()`` equals one-shot
  ``generate()`` over the concatenated log, both in widget set and in
  closure membership over a recall suite of seen and held-out queries.
"""

import pytest

from repro.api import InterfaceSession, generate
from repro.core.mapper import (
    MapCache,
    initialize,
    initialize_indexed,
    merge_widgets,
    merge_widgets_incremental,
)
from repro.core.options import PipelineOptions
from repro.graph.build import build_interaction_graph, extend_interaction_graph
from repro.logs import AdhocLogGenerator, OLAPLogGenerator, SDSSLogGenerator
from repro.logs.sessions import segment_asts
from repro.sqlparser import parse_sql


def _family_log(family: str) -> list:
    if family == "sdss":
        return SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 80).asts()
    if family == "olap":
        return OLAPLogGenerator(seed=1).generate(80).asts()
    if family == "adhoc":
        return AdhocLogGenerator(seed=2).student_log("S1", 70).asts()
    if family == "sessions":
        # the interleaved multi-analysis log the sessions module segments;
        # exercise the segmentation layer, then mine the largest analysis
        mixed = SDSSLogGenerator(seed=3).interleaved(3, 25).asts()
        return max(segment_asts(mixed, 0.3, 0.3), key=len)
    if family == "onehot":
        # adversarial one-hot-component workload: the warm-up carves one
        # big component (a structurally divergent query plants a
        # root-path widget) with a nested function subtree inside it,
        # then every subsequent query re-issues a single template varying
        # one literal — every new diff lands in that component's hot
        # spine while the nested ``f(y, _)`` subtree stays clean, which
        # is exactly the case the dirty-window merge memo must exploit
        warmup = (
            ["SELECT g, SUM(m) FROM t GROUP BY g"]
            + [
                f"SELECT a, b FROM t WHERE x = 0 AND f(y, {j}) = 5"
                for j in range(5)
            ]
            + [
                "SELECT a, b FROM t WHERE x = 0 AND z = 5",
                "SELECT a, b FROM t WHERE x = 0 AND f(y, 2) = 5",
            ]
        )
        hot = [
            f"SELECT a, b FROM t WHERE x = {value} AND f(y, 3) = 5"
            for value in range(40)
        ]
        return [parse_sql(s) for s in warmup + hot]
    raise AssertionError(family)


FAMILIES = ["sdss", "olap", "adhoc", "sessions"]
ALL_FAMILIES = [*FAMILIES, "onehot"]


def summary(widgets):
    return [(w.widget_type.name, str(w.path), w.domain.size) for w in widgets]


class TestMapperParity:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_incremental_equals_global_at_every_append(self, family):
        asts = _family_log(family)
        options = PipelineOptions(window=4)
        cache = MapCache()
        graph = build_interaction_graph(asts[: len(asts) // 2], window=4)
        cache.index.update(graph.diffs)
        step = max(1, len(asts) // 10)
        checkpoints = list(range(len(asts) // 2, len(asts), step))
        for start in checkpoints:
            extend_interaction_graph(graph, asts[start : start + step], window=4)
            cache.index.update(graph.diffs)
            widgets, _, _ = initialize_indexed(
                cache, options.library, options.annotations
            )
            merged, _, _ = merge_widgets_incremental(
                widgets, options.library, options.annotations, cache
            )
            # reference: full build of the same accumulated log
            reference_diffs = sorted(graph.diffs, key=lambda d: (d.q1, d.q2))
            reference = merge_widgets(
                initialize(reference_diffs, options.library, options.annotations),
                options.library,
                options.annotations,
                leaf_diffs=[d for d in reference_diffs if d.is_leaf],
            )
            assert summary(merged) == summary(reference)

    def test_clean_components_are_reused(self):
        """The dirty-set worklist must actually shrink work: on a log with
        several independent merge components, appends that touch a subset
        leave the rest memoised."""
        asts = AdhocLogGenerator(seed=2).student_log("S1", 120).asts()
        options = PipelineOptions()
        session_cache = MapCache()
        graph = build_interaction_graph(asts[:100], window=2)
        session_cache.index.update(graph.diffs)
        widgets, _, _ = initialize_indexed(
            session_cache, options.library, options.annotations
        )
        merge_widgets_incremental(
            widgets, options.library, options.annotations, session_cache
        )
        reused_total = 0
        for start in range(100, 120, 4):
            extend_interaction_graph(graph, asts[start : start + 4], window=2)
            session_cache.index.update(graph.diffs)
            widgets, n_reused_paths, _ = initialize_indexed(
                session_cache, options.library, options.annotations
            )
            _, n_reused, n_merged = merge_widgets_incremental(
                widgets, options.library, options.annotations, session_cache
            )
            assert n_reused + n_merged >= 1
            assert n_reused_paths > 0  # untouched partitions reuse widgets
            reused_total += n_reused
        assert reused_total > 0  # some components replayed their memo


class TestSessionParity:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_session_appends_equal_one_shot(self, family):
        asts = _family_log(family)
        session = InterfaceSession()
        step = max(1, len(asts) // 6)
        result = None
        for start in range(0, len(asts), step):
            result = session.append(asts[start : start + step])
        full = generate(asts)
        assert (
            result.interface.widget_summary() == full.interface.widget_summary()
        )
        assert result.interface.cost == pytest.approx(full.interface.cost)
        # pair-set identity: the session aligned exactly the pairs one
        # full build over the concatenated log would have
        assert session.n_pairs_compared == full.run.n_pairs_compared

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_closure_membership_parity_on_recall_suite(self, family):
        """Same widget set must mean same closure: membership verdicts for
        seen queries and structurally-near held-out queries agree between
        the incremental and the one-shot interface."""
        asts = _family_log(family)
        split = (len(asts) * 3) // 4
        session = InterfaceSession()
        step = max(1, split // 4)
        for start in range(0, split, step):
            session.append(asts[start : start + step])
        full = generate(asts[:split])
        suite = asts[:split][:10] + asts[split:][:10]
        incremental_verdicts = [session.expresses(q) for q in suite]
        one_shot_verdicts = [full.interface.expresses(q) for q in suite]
        assert incremental_verdicts == one_shot_verdicts
        # every seen query is expressible (the paper's g = 1 guarantee)
        assert all(incremental_verdicts[: len(asts[:split][:10])])

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_widget_and_closure_parity_at_every_append(self, family):
        """Strong form of the parity guarantee: not just the final state —
        after *every* append the session's widget set and its closure
        verdicts over the queries seen so far match a one-shot build of
        the same prefix byte for byte."""
        asts = _family_log(family)
        session = InterfaceSession()
        step = max(1, len(asts) // 5)
        for start in range(0, len(asts), step):
            result = session.append(asts[start : start + step])
            prefix = asts[: start + step]
            full = generate(prefix)
            assert (
                result.interface.widget_summary()
                == full.interface.widget_summary()
            )
            suite = prefix[:8]
            assert [session.expresses(q) for q in suite] == [
                full.interface.expresses(q) for q in suite
            ]

    def test_merge_stage_reports_component_counters(self):
        asts = _family_log("adhoc")
        session = InterfaceSession()
        session.append(asts[:50])
        second = session.append(asts[50:])
        stats = second.run.stage("merge").stats
        assert stats["n_components"] >= 1
        assert (
            stats["n_components_reused"] + stats["n_components_merged"]
            == stats["n_components"]
        )


class TestWindowReuse:
    def test_onehot_appends_replay_clean_sibling_windows(self):
        """The point of the interval index: on the one-hot workload the
        hot component is dirty at every append, but the clean nested
        subtree inside it replays memoised merge steps instead of
        re-merging — the fixed point narrows to the dirty spine."""
        asts = _family_log("onehot")
        session = InterfaceSession()
        session.append(asts[:14])
        for start in range(14, len(asts), 5):
            result = session.append(asts[start : start + 5])
            stats = result.run.stage("merge").stats
            # every steady-state append replays at least one clean window
            assert stats["n_windows_reused"] > 0
        assert session.n_windows_reused > 0
        # the cumulative session counters aggregate the per-append stats
        assert session.n_windows_merged > 0

    def test_onehot_leaves_cold_components_memoised(self):
        """A multi-component variant: the projection-slot and the
        f-subtree-replacement components stay cold under one-hot appends,
        so the component memo replays them wholesale while only the hot
        literal's component re-merges."""
        statements = (
            [
                f"SELECT a, b FROM t WHERE x = 0 AND f(y, {j}) = 5"
                for j in range(5)
            ]
            + [
                "SELECT a, b FROM t WHERE x = 0 AND z = 5",
                "SELECT a, b FROM t WHERE x = 0 AND f(y, 2) = 5",
                "SELECT c, b FROM t WHERE x = 0 AND f(y, 2) = 5",
                "SELECT d, b FROM t WHERE x = 0 AND f(y, 2) = 5",
                "SELECT a, b FROM t WHERE x = 0 AND f(y, 2) = 5",
            ]
            + [
                f"SELECT a, b FROM t WHERE x = {value} AND f(y, 2) = 5"
                for value in range(30)
            ]
        )
        asts = [parse_sql(s) for s in statements]
        session = InterfaceSession()
        session.append(asts[:14])
        reused = 0
        for start in range(14, len(asts), 5):
            result = session.append(asts[start : start + 5])
            stats = result.run.stage("merge").stats
            reused += stats["n_components_reused"]
        assert reused > 0
