"""End-to-end pipeline tests covering the Figure 5 scenarios."""

import pytest

from tests.helpers import generate_iface
from repro import PipelineOptions, generate, parse_sql
from repro.errors import LogError, MappingError
from repro.logs import (
    LISTING_6,
    LISTING_7,
    listing_4_log,
    listing_5_large,
    listing_5_small,
)



def widget_names(interface):
    return sorted(w.widget_type.name for w in interface.widgets)


class TestFigure5Scenarios:
    def test_fig5a_param_changes_in_complex_query(self):
        """Listing 4: a drop-down for the customer name, a slider for the
        numeric offset — interface complexity tracks the *changes*, not the
        query complexity."""
        interface = generate_iface(listing_4_log(20).asts())
        names = widget_names(interface)
        assert "slider" in names
        assert "dropdown" in names
        assert interface.n_widgets == 2

    def test_fig5b_small_log_compact_widgets(self):
        interface = generate_iface(listing_5_small().asts())
        assert interface.n_widgets <= 2
        assert interface.expressiveness(listing_5_small().asts()) == 1.0

    def test_fig5c_larger_log_splits_widgets(self):
        """With 13 queries, separate widgets for the function name and its
        argument beat one big option list."""
        interface = generate_iface(listing_5_large().asts())
        names = widget_names(interface)
        assert "dropdown" in names
        assert interface.expressiveness(listing_5_large().asts()) == 1.0
        paths = sorted(str(w.path) for w in interface.widgets)
        assert "0/0/0/0" in paths  # function name
        assert "0/0/0/1" in paths  # argument

    def test_fig5d_top_toggle_and_slider(self, listing6_interface):
        names = widget_names(listing6_interface)
        assert names == ["slider", "toggle_button"]
        toggle = next(
            w for w in listing6_interface.widgets if w.widget_type.name == "toggle_button"
        )
        assert toggle.domain.includes_none  # presence toggle

    def test_fig5e_subquery_toggle(self, listing7_interface):
        names = widget_names(listing7_interface)
        assert "toggle_button" in names
        assert "slider" in names
        assert listing7_interface.expressiveness(
            [parse_sql(s) for s in LISTING_7]
        ) == 1.0


class TestOptions:
    def test_window_none_baseline_same_interface_as_window2(self):
        """Section 6/Appendix B: the optimisations do not change the output
        interface on systematically-changing logs."""
        log = listing_4_log(20).asts()
        narrow = generate_iface(log, PipelineOptions(window=2))
        full = generate_iface(log, PipelineOptions(window=None))
        assert widget_names(narrow) == widget_names(full)
        assert {str(w.path) for w in narrow.widgets} == {
            str(w.path) for w in full.widgets
        }

    def test_lca_pruning_preserves_expressiveness(self):
        """Pruning may steer the merge heuristic to a different widget set
        (the greedy is order-sensitive), but both interfaces must express
        the entire log, and pruning must not *increase* the diff count."""
        log = [parse_sql(s) for s in LISTING_6]
        pruned = generate_iface(log, PipelineOptions(lca_pruning=True))
        unpruned = generate_iface(log, PipelineOptions(lca_pruning=False))
        assert pruned.expressiveness(log) == 1.0
        assert unpruned.expressiveness(log) == 1.0
        assert pruned.metadata["n_diffs"] <= unpruned.metadata["n_diffs"]

    def test_bad_options_rejected(self):
        with pytest.raises(MappingError):
            PipelineOptions(coverage=0.0)
        with pytest.raises(MappingError):
            PipelineOptions(window=1)
        with pytest.raises(MappingError):
            PipelineOptions(library=[])

    def test_empty_log_rejected(self):
        with pytest.raises(LogError):
            generate_iface([])


class TestRunRecord:
    def test_run_record_populated(self):
        run = generate(list(LISTING_6)).run
        assert run.n_queries == 3
        assert run.n_edges == 2
        assert run.total_seconds > 0
        assert run.n_widgets == 2

    def test_metadata_on_interface(self, listing6_interface):
        assert listing6_interface.metadata["n_queries"] == 3
        assert listing6_interface.metadata["lca_pruning"] is True

    def test_identical_log_yields_zero_widgets(self):
        interface = generate_iface(
            ["SELECT a FROM t"] * 4
        )
        assert interface.n_widgets == 0
        assert interface.expresses(parse_sql("SELECT a FROM t"))

    def test_cost_is_sum_of_widget_costs(self, listing6_interface):
        assert listing6_interface.cost == pytest.approx(
            sum(w.cost for w in listing6_interface.widgets)
        )
