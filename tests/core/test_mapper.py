"""Interaction mapper tests (Algorithms 1-3)."""

import pytest

from repro.core.mapper import MapperStats, initialize, map_interactions, pick_widget
from repro.errors import MappingError
from repro.graph import build_interaction_graph
from repro.sqlparser import parse_sql
from repro.widgets import default_library


def diffs_for(statements, prune=True):
    asts = [parse_sql(s) for s in statements]
    return build_interaction_graph(asts, window=2, prune=prune).diffs


class TestPickWidget:
    def test_numeric_partition_gets_slider(self):
        diffs = diffs_for(
            ["SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 9"]
        )
        widget = pick_widget(diffs, default_library())
        assert widget.widget_type.name == "slider"
        assert widget.domain.size == 2

    def test_string_pair_gets_toggle(self):
        diffs = diffs_for(
            ["SELECT a FROM t WHERE c = 'x'", "SELECT a FROM t WHERE c = 'y'"]
        )
        widget = pick_widget(diffs, default_library())
        assert widget.widget_type.name == "toggle_button"

    def test_string_set_gets_dropdown(self):
        diffs = diffs_for(
            [f"SELECT a FROM t WHERE c = '{v}'" for v in "abcdef"]
        )
        widget = pick_widget(diffs, default_library())
        assert widget.widget_type.name == "dropdown"
        assert widget.domain.size == 6

    def test_huge_string_set_gets_textbox(self):
        diffs = diffs_for(
            [f"SELECT a FROM t WHERE c = 'v{i}'" for i in range(45)]
        )
        widget = pick_widget(diffs, default_library())
        assert widget.widget_type.name == "textbox"

    def test_presence_toggle(self):
        diffs = diffs_for(["SELECT a FROM t", "SELECT TOP 5 a FROM t"])
        widget = pick_widget(diffs, default_library())
        assert widget.widget_type.name == "toggle_button"
        assert widget.domain.includes_none

    def test_empty_partition_returns_none(self):
        assert pick_widget([], default_library()) is None

    def test_no_accepting_type_raises(self):
        diffs = diffs_for(["SELECT a FROM t WHERE x = 1",
                           "SELECT a FROM t WHERE x = 2"])
        from repro.widgets import TOGGLE_BUTTON

        with pytest.raises(MappingError):
            # a library with only a 2-state widget cannot host 3+ options
            three = diffs_for([f"SELECT a FROM t WHERE x = {i}" for i in (1, 2, 3)])
            pick_widget(three, [TOGGLE_BUTTON])
        assert pick_widget(diffs, [TOGGLE_BUTTON]) is not None


class TestInitialize:
    def test_one_widget_per_path(self):
        diffs = diffs_for(
            [
                "SELECT a, sales FROM t WHERE c = 'x' AND n > 1",
                "SELECT a, costs FROM t WHERE c = 'y' AND n > 1",
            ]
        )
        widgets = initialize(diffs, default_library())
        assert len({w.path for w in widgets}) == len(widgets)
        # leaf partitions: ColExpr change + StrExpr change + root ancestor
        assert len(widgets) == 3

    def test_empty_diffs_empty_interface(self):
        assert initialize([], default_library()) == []


class TestMerge:
    def test_merge_reduces_cost(self):
        statements = [
            "SELECT avg(a)",
            "SELECT count(b)",
            "SELECT count(c)",
        ]
        diffs = diffs_for(statements)
        stats = MapperStats()
        map_interactions(diffs, stats=stats)
        assert stats.final_cost <= stats.initial_cost
        assert stats.n_final_widgets <= stats.n_initial_widgets

    def test_merge_keeps_every_query_expressible(self):
        from repro.core.closure import expresses

        statements = [
            "SELECT avg(a)",
            "SELECT count(b)",
            "SELECT count(c)",
        ]
        asts = [parse_sql(s) for s in statements]
        widgets = map_interactions(diffs_for(statements))
        for ast in asts:
            assert expresses(widgets, asts[0], ast)

    def test_merge_disabled_keeps_all_partitions(self):
        statements = [
            "SELECT avg(a)",
            "SELECT count(b)",
            "SELECT count(c)",
        ]
        merged = map_interactions(diffs_for(statements), merge=True)
        unmerged = map_interactions(diffs_for(statements), merge=False)
        assert len(unmerged) >= len(merged)

    def test_stats_recorded(self):
        stats = MapperStats()
        map_interactions(diffs_for(["SELECT a", "SELECT b"]), stats=stats)
        assert stats.mapping_seconds > 0
        assert stats.n_partitions >= 1
