"""Widget domain tests."""

from repro.sqlparser import Node, parse_sql
from repro.widgets import WidgetDomain


def num(v):
    return Node("NumExpr", {"value": v})


def col(name):
    return Node("ColExpr", {"name": name})


def between(target, lo, hi):
    return Node("BetweenExpr", {}, [col(target), num(lo), num(hi)])


class TestBasics:
    def test_deduplication(self):
        domain = WidgetDomain([num(1), num(1), num(2)])
        assert domain.size == 2

    def test_none_counts_once(self):
        domain = WidgetDomain([None, None, num(1)])
        assert domain.size == 2
        assert domain.includes_none

    def test_subtrees_excludes_none(self):
        domain = WidgetDomain([None, num(1)])
        assert [n.attributes["value"] for n in domain.subtrees()] == [1]

    def test_len_and_iter(self):
        domain = WidgetDomain([num(1), num(2)])
        assert len(domain) == 2
        assert len(list(domain)) == 2


class TestKinds:
    def test_numeric_domain(self):
        domain = WidgetDomain([num(1), num(5), num(100)])
        assert domain.is_numeric
        assert domain.numeric_range == (1.0, 100.0)

    def test_hex_values_are_numeric(self):
        domain = WidgetDomain([
            Node("HexExpr", {"value": 16, "text": "0x10"}),
            Node("HexExpr", {"value": 32, "text": "0x20"}),
        ])
        assert domain.numeric_range == (16.0, 32.0)

    def test_mixed_kind_is_not_numeric(self):
        domain = WidgetDomain([num(1), col("a")])
        assert not domain.is_numeric
        assert domain.is_literal

    def test_tree_domain_not_literal(self):
        domain = WidgetDomain([parse_sql("SELECT a")])
        assert not domain.is_literal

    def test_node_types(self):
        domain = WidgetDomain([num(1), col("a")])
        assert domain.node_types == {"NumExpr", "ColExpr"}


class TestMembership:
    def test_exact_containment(self):
        domain = WidgetDomain([num(1), num(5)])
        assert domain.contains(num(5))
        assert not domain.contains(num(3))

    def test_none_membership(self):
        assert WidgetDomain([None, num(1)]).contains(None)
        assert not WidgetDomain([num(1), num(2)]).contains(None)

    def test_slider_extrapolation(self):
        """Example 4.3: a slider initialised with {1, 5, 100} expresses the
        whole range [1, 100]."""
        domain = WidgetDomain([num(1), num(5), num(100)])
        assert domain.contains(num(42), extrapolate=True)
        assert not domain.contains(num(42), extrapolate=False)
        assert not domain.contains(num(101), extrapolate=True)

    def test_extrapolation_ignores_non_numeric(self):
        domain = WidgetDomain([col("a"), col("b")])
        assert not domain.contains(num(1), extrapolate=True)


class TestBetweenRange:
    def test_metadata(self):
        domain = WidgetDomain([between("ra", 0, 100), between("ra", 50, 360)])
        target, low, high = domain.between_range()
        assert target.attributes["name"] == "ra"
        assert (low, high) == (0.0, 360.0)

    def test_contains_between_inside_track(self):
        domain = WidgetDomain([between("ra", 0, 100), between("ra", 50, 360)])
        assert domain.contains_between(between("ra", 120, 130))
        assert not domain.contains_between(between("ra", -10, 50))

    def test_different_target_rejected(self):
        domain = WidgetDomain([between("ra", 0, 100)])
        assert not domain.contains_between(between("dec", 10, 20))

    def test_non_between_domain_has_no_range(self):
        assert WidgetDomain([num(1), num(2)]).between_range() is None

    def test_mixed_targets_have_no_range(self):
        domain = WidgetDomain([between("ra", 0, 1), between("dec", 0, 1)])
        assert domain.between_range() is None


class TestMerge:
    def test_merged_with_unions_entries(self):
        merged = WidgetDomain([num(1)]).merged_with(WidgetDomain([num(2), None]))
        assert merged.size == 3
        assert merged.includes_none
