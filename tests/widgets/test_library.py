"""Widget type library tests: rules, costs, selection order."""

import pytest

from repro.errors import WidgetError
from repro.sqlparser import Node, parse_sql
from repro.widgets import (
    CHECKBOX,
    CHECKBOX_LIST,
    DRAG_AND_DROP,
    DROPDOWN,
    RADIO_BUTTON,
    RANGE_SLIDER,
    SLIDER,
    TEXTBOX,
    TOGGLE_BUTTON,
    Widget,
    WidgetDomain,
    default_library,
    make_widget_type,
)


def num(v):
    return Node("NumExpr", {"value": v})


def text(v):
    return Node("StrExpr", {"value": v})


def between(lo, hi):
    return Node(
        "BetweenExpr",
        {},
        [Node("ColExpr", {"name": "ra"}), num(lo), num(hi)],
    )


class TestRules:
    def test_library_has_nine_types(self):
        assert len(default_library()) == 9

    def test_slider_accepts_numeric_only(self):
        assert SLIDER.accepts(WidgetDomain([num(1), num(2)]))
        assert not SLIDER.accepts(WidgetDomain([text("a"), text("b")]))
        assert not SLIDER.accepts(WidgetDomain([None, num(1)]))

    def test_dropdown_accepts_literals_only(self):
        assert DROPDOWN.accepts(WidgetDomain([text("a"), text("b")]))
        assert not DROPDOWN.accepts(WidgetDomain([parse_sql("SELECT a"),
                                                  parse_sql("SELECT b")]))

    def test_toggle_needs_exactly_two(self):
        assert TOGGLE_BUTTON.accepts(WidgetDomain([None, parse_sql("SELECT a")]))
        assert not TOGGLE_BUTTON.accepts(WidgetDomain([num(1), num(2), num(3)]))

    def test_checkbox_is_literal_presence(self):
        assert CHECKBOX.accepts(WidgetDomain([None, num(1)]))
        assert not CHECKBOX.accepts(WidgetDomain([None, parse_sql("SELECT a")]))

    def test_radio_is_tree_catchall(self):
        trees = [parse_sql(f"SELECT a{i}") for i in range(5)]
        assert RADIO_BUTTON.accepts(WidgetDomain(trees))
        assert not RADIO_BUTTON.accepts(WidgetDomain([None, trees[0], trees[1]]))

    def test_checkbox_list_is_none_catchall(self):
        trees = [parse_sql(f"SELECT a{i}") for i in range(3)]
        assert CHECKBOX_LIST.accepts(WidgetDomain([None] + trees))
        assert not CHECKBOX_LIST.accepts(WidgetDomain(trees))

    def test_textbox_accepts_large_literal_domains(self):
        values = [num(i) for i in range(100)]
        assert TEXTBOX.accepts(WidgetDomain(values))

    def test_range_slider_rule(self):
        good = WidgetDomain([between(0, 10), between(5, 50)])
        assert RANGE_SLIDER.accepts(good)
        mixed = WidgetDomain([between(0, 10), num(5)])
        assert not RANGE_SLIDER.accepts(mixed)

    def test_drag_and_drop_rule(self):
        a, b = num(1), num(2)
        original = Node("Project", {}, [a, b])
        permuted = Node("Project", {}, [b, a])
        assert DRAG_AND_DROP.accepts(WidgetDomain([original, permuted]))
        different = Node("Project", {}, [a, num(3)])
        assert not DRAG_AND_DROP.accepts(WidgetDomain([original, different]))

    def test_every_two_entry_domain_is_accepted_by_someone(self):
        domains = [
            WidgetDomain([num(1), num(2)]),
            WidgetDomain([text("a"), text("b")]),
            WidgetDomain([None, num(1)]),
            WidgetDomain([None, parse_sql("SELECT a")]),
            WidgetDomain([parse_sql("SELECT a"), parse_sql("SELECT b")]),
        ]
        library = default_library()
        for domain in domains:
            assert any(wt.accepts(domain) for wt in library)


class TestCostOrdering:
    """The orderings the paper's examples rely on."""

    def test_slider_beats_dropdown_on_numerics(self):
        domain = WidgetDomain([num(1), num(10)])
        assert SLIDER.cost_for(domain) < DROPDOWN.cost_for(domain)

    def test_dropdown_beats_textbox_on_small_domains(self):
        small = WidgetDomain([text(str(i)) for i in range(5)])
        assert DROPDOWN.cost_for(small) < TEXTBOX.cost_for(small)

    def test_textbox_beats_dropdown_on_huge_domains(self):
        """Example 4.4's crossover at roughly 36 options."""
        huge = WidgetDomain([text(str(i)) for i in range(50)])
        assert TEXTBOX.cost_for(huge) < DROPDOWN.cost_for(huge)

    def test_paper_dropdown_constants(self):
        domain = WidgetDomain([text("a"), text("b")])
        assert DROPDOWN.cost_for(domain) == pytest.approx(276 + 125 * 2 + 0.07 * 4)

    def test_paper_textbox_constant(self):
        assert TEXTBOX.cost_for(WidgetDomain([text("a")])) == 4790

    def test_radio_cost_grows_quadratically(self):
        small = WidgetDomain([parse_sql(f"SELECT a{i}") for i in range(3)])
        large = WidgetDomain([parse_sql(f"SELECT a{i}") for i in range(30)])
        assert RADIO_BUTTON.cost_for(large) > 10 * RADIO_BUTTON.cost_for(small)


class TestWidgetInstances:
    def test_rule_enforced_at_instantiation(self):
        from repro.paths import Path

        with pytest.raises(WidgetError):
            Widget(SLIDER, Path.parse("0"), WidgetDomain([text("a"), text("b")]))

    def test_slider_extrapolated_expression(self):
        from repro.paths import Path

        widget = Widget(SLIDER, Path.parse("0"), WidgetDomain([num(1), num(100)]))
        assert widget.can_express_subtree(num(50))
        assert not widget.can_express_subtree(num(500))

    def test_textbox_expresses_any_literal(self):
        from repro.paths import Path

        widget = Widget(TEXTBOX, Path.parse("0"), WidgetDomain([text("a")]))
        assert widget.can_express_subtree(text("unseen"))
        assert widget.can_express_subtree(num(123))
        assert not widget.can_express_subtree(parse_sql("SELECT a"))

    def test_range_slider_expresses_between_on_track(self):
        from repro.paths import Path

        widget = Widget(
            RANGE_SLIDER,
            Path.parse("2/0/0"),
            WidgetDomain([between(0, 100), between(50, 360)]),
        )
        assert widget.can_express_subtree(between(120, 130))
        assert not widget.can_express_subtree(between(-5, 10))

    def test_make_widget_type_custom_cost(self):
        from repro.widgets.cost import QuadraticCost

        custom = make_widget_type("my_dropdown", DROPDOWN, QuadraticCost(1.0))
        assert custom.cost_for(WidgetDomain([text("a"), text("b")])) == 1.0
        with pytest.raises(WidgetError):
            make_widget_type("", DROPDOWN)
