"""Cost model and trace fitting tests."""

import pytest

from repro.widgets import (
    DEFAULT_COEFFICIENTS,
    QuadraticCost,
    TimingTrace,
    TraceSimulator,
    fit_cost_model,
    simulate_and_fit,
)


class TestQuadraticCost:
    def test_evaluation(self):
        cost = QuadraticCost(10.0, 2.0, 0.5)
        assert cost(4) == 10 + 8 + 8

    def test_monotone_nonnegative(self):
        cost = QuadraticCost(1.0, 1.0, 1.0)
        values = [cost(n) for n in range(10)]
        assert values == sorted(values)

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            QuadraticCost(-1.0)

    def test_all_defaults_present(self):
        names = {
            "textbox", "toggle_button", "checkbox", "radio_button",
            "dropdown", "slider", "range_slider", "checkbox_list",
            "drag_and_drop",
        }
        assert set(DEFAULT_COEFFICIENTS) == names

    def test_as_tuple(self):
        assert QuadraticCost(1, 2, 3).as_tuple() == (1, 2, 3)


class TestFitting:
    def test_recovers_exact_quadratic(self):
        truth = QuadraticCost(100.0, 10.0, 0.5)
        sizes = list(range(1, 50))
        times = [truth(n) for n in sizes]
        fitted = fit_cost_model(sizes, times)
        assert fitted.a0 == pytest.approx(100.0, rel=0.01)
        assert fitted.a1 == pytest.approx(10.0, rel=0.01)
        assert fitted.a2 == pytest.approx(0.5, rel=0.01)

    def test_coefficients_nonnegative_even_for_noisy_data(self):
        fitted = fit_cost_model([1, 2, 3, 4], [100, 90, 95, 85])
        assert fitted.a0 >= 0 and fitted.a1 >= 0 and fitted.a2 >= 0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            fit_cost_model([], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            fit_cost_model([1, 2], [10.0])


class TestTraceSimulation:
    def test_trace_shape(self):
        trace = TraceSimulator(seed=1).trace("dropdown", trials_per_size=5)
        assert isinstance(trace, TimingTrace)
        assert len(trace) == 5 * 10

    def test_deterministic_given_seed(self):
        a = TraceSimulator(seed=3).trial("slider", 10)
        b = TraceSimulator(seed=3).trial("slider", 10)
        assert a == b

    def test_unknown_widget_raises(self):
        with pytest.raises(KeyError):
            TraceSimulator().trial("hologram", 5)

    def test_fitted_ordering_matches_example_4_4(self):
        """The fitted dropdown is cheap for small domains, the textbox flat
        and large; their crossover sits in the tens of options — the
        structure of the paper's Example 4.4."""
        fitted = simulate_and_fit(seed=11)
        dropdown = fitted["dropdown"]
        textbox = fitted["textbox"]
        assert dropdown(3) < textbox(3)
        assert dropdown(100) > textbox(100)
        assert textbox.a0 == pytest.approx(4790, rel=0.2)

    def test_fitted_slider_beats_dropdown_on_numeric_sizes(self):
        fitted = simulate_and_fit(seed=11)
        assert fitted["slider"](10) < fitted["dropdown"](10)
