"""Interaction graph construction tests."""

import pytest

from repro.errors import LogError
from repro.graph import BuildStats, build_interaction_graph
from repro.sqlparser import parse_sql


def asts(statements):
    return [parse_sql(s) for s in statements]


LOG = asts(
    [
        "SELECT a FROM t WHERE x = 1",
        "SELECT a FROM t WHERE x = 2",
        "SELECT a FROM t WHERE x = 3",
        "SELECT a FROM t WHERE x = 4",
    ]
)


class TestWindowing:
    def test_window2_compares_adjacent_only(self):
        stats = BuildStats()
        graph = build_interaction_graph(LOG, window=2, stats=stats)
        assert stats.n_pairs_compared == 3
        assert graph.n_edges == 3
        assert {(e.q1, e.q2) for e in graph.edges} == {(0, 1), (1, 2), (2, 3)}

    def test_full_window_compares_all_pairs(self):
        stats = BuildStats()
        graph = build_interaction_graph(LOG, window=None, stats=stats)
        assert stats.n_pairs_compared == 6
        assert graph.n_edges == 6

    def test_window_larger_than_log_equals_full(self):
        full = build_interaction_graph(LOG, window=None)
        wide = build_interaction_graph(LOG, window=100)
        assert full.n_edges == wide.n_edges

    def test_window_reduces_edges(self):
        narrow = build_interaction_graph(LOG, window=2)
        full = build_interaction_graph(LOG, window=None)
        assert narrow.n_edges < full.n_edges

    def test_bad_window_raises(self):
        with pytest.raises(LogError):
            build_interaction_graph(LOG, window=1)

    def test_empty_log_raises(self):
        with pytest.raises(LogError):
            build_interaction_graph([])


class TestEdges:
    def test_identical_queries_produce_no_edge(self):
        twice = asts(["SELECT a FROM t", "SELECT a FROM t"])
        graph = build_interaction_graph(twice)
        assert graph.n_edges == 0
        assert graph.n_diffs == 0

    def test_edge_interaction_holds_leaf_diffs(self):
        graph = build_interaction_graph(LOG[:2])
        edge = graph.edges[0]
        assert len(edge.interaction) == 1
        assert edge.interaction[0].is_leaf

    def test_diffs_table_includes_ancestors_when_unpruned(self):
        a = asts([
            "SELECT x, sales FROM T WHERE c = 'A' AND n > 1",
            "SELECT x, costs FROM T WHERE c = 'B' AND n > 1",
        ])
        pruned = build_interaction_graph(a, prune=True)
        full = build_interaction_graph(a, prune=False)
        assert full.n_diffs > pruned.n_diffs

    def test_single_query_log(self):
        graph = build_interaction_graph(LOG[:1])
        assert graph.n_vertices == 1
        assert graph.n_edges == 0

    def test_mining_time_recorded(self):
        stats = BuildStats()
        build_interaction_graph(LOG, stats=stats)
        assert stats.mining_seconds > 0


class TestGraphQueries:
    def test_out_edges(self):
        graph = build_interaction_graph(LOG, window=2)
        assert [e.q2 for e in graph.out_edges(0)] == [1]

    def test_neighbours(self):
        graph = build_interaction_graph(LOG, window=2)
        assert graph.neighbours(1) == {0, 2}

    def test_summary_keys(self):
        summary = build_interaction_graph(LOG).summary()
        assert summary["vertices"] == 4
        assert summary["leaf_diffs"] + summary["ancestor_diffs"] == summary["diffs"]
