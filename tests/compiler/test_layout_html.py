"""Layout and HTML compiler tests."""

import pytest

from tests.helpers import generate_iface
from repro import parse_sql
from repro.compiler import Database, Table, compile_html, describe_layout, grid_layout
from repro.errors import CompileError
from repro.logs import LISTING_6



@pytest.fixture
def interface():
    return generate_iface(list(LISTING_6))


class TestLayout:
    def test_grid_positions(self, interface):
        plan = grid_layout(interface, columns=2)
        assert [(c.row, c.column) for c in plan.cells] == [(0, 0), (0, 1)]

    def test_shallow_paths_first(self, interface):
        plan = grid_layout(interface)
        depths = [c.widget.path.depth for c in plan.cells]
        assert depths == sorted(depths)

    def test_default_labels(self, interface):
        plan = grid_layout(interface)
        labels = [c.label for c in plan.cells]
        assert any("TOP" in label for label in labels)

    def test_relabel(self, interface):
        plan = grid_layout(interface)
        widget = plan.cells[0].widget
        plan.relabel(widget, "Row limit")
        assert plan.cells[0].label == "Row limit"
        assert widget.label == "Row limit"

    def test_move(self, interface):
        plan = grid_layout(interface)
        widget = plan.cells[0].widget
        plan.move(widget, 3, 1)
        assert (plan.cells[0].row, plan.cells[0].column) == (3, 1)

    def test_move_out_of_grid_raises(self, interface):
        plan = grid_layout(interface)
        with pytest.raises(CompileError):
            plan.move(plan.cells[0].widget, 0, 9)

    def test_bad_columns_raises(self, interface):
        with pytest.raises(CompileError):
            grid_layout(interface, columns=0)

    def test_describe_layout(self, interface):
        text = describe_layout(interface)
        assert "initial:" in text


class TestHtmlCompiler:
    def test_page_is_selfcontained(self, interface):
        page = compile_html(interface, title="Listing 6")
        assert page.startswith("<!DOCTYPE html>")
        assert "Listing 6" in page
        assert "CLOSURE" in page
        assert page.count('<div class="widget">') == interface.n_widgets

    def test_initial_query_in_closure(self, interface):
        from repro.sqlparser.render import render_sql

        page = compile_html(interface)
        assert render_sql(interface.initial_query) in page

    def test_results_embedded_with_database(self):
        db = Database()
        db.add(Table("t", ["a", "b"], [(1, 10), (2, 20)]))
        iface = generate_iface(
            ["SELECT a FROM t WHERE b = 10", "SELECT a FROM t WHERE b = 20"]
        )
        page = compile_html(iface, database=db, limit=64)
        assert "result" in page

    def test_limit_caps_closure(self, interface):
        small = compile_html(interface, limit=2)
        big = compile_html(interface, limit=1000)
        assert len(small) < len(big)

    def test_empty_interface_rejected(self):
        iface = generate_iface(["SELECT a"] * 2)
        with pytest.raises(CompileError):
            compile_html(iface)

    def test_html_escaping(self):
        iface = generate_iface(
            ["SELECT a FROM t WHERE c = '<x>'", "SELECT a FROM t WHERE c = '<y>'"]
        )
        page = compile_html(iface, title="<script>")
        assert "<script>alert" not in page
        assert "&lt;script&gt;" in page
