"""Incremental compiler tests: byte-parity with the one-shot compiler,
artifact reuse, the patch wire format, and the persisted page state.

The acceptance bar for the incremental refactor is *byte identity*: at
every append, folding the session's patch stream must render exactly the
page a full ``compile_html`` would produce, on every bundled log family.
"""

from pathlib import Path as FilePath

import pytest

from tests.core.test_merge_incremental import ALL_FAMILIES, _family_log
from tests.helpers import generate_iface
from repro.api import InterfaceSession
from repro.compiler import Database, Table, compile_html
from repro.compiler.incremental import (
    PATCH_VERSION,
    CompiledPage,
    IncrementalCompiler,
    apply_patch,
    make_patch,
    page_html,
    widget_fingerprint,
)
from repro.errors import CompileError, LogError
from repro.logs import LISTING_6

GOLDEN = FilePath(__file__).parent / "golden_listing6.html"


@pytest.fixture
def interface():
    return generate_iface(list(LISTING_6))


# ----------------------------------------------------------------------
# golden page
# ----------------------------------------------------------------------
class TestGoldenPage:
    def test_listing6_page_matches_golden_file(self, interface):
        """The committed golden page pins the full output format — template,
        widget blocks, closure order — so any unintended byte change in
        either compiler path fails loudly.  Regenerate deliberately by
        writing ``compile_html(generate_iface(list(LISTING_6)),
        title="Listing 6")`` over the golden file."""
        page = compile_html(interface, title="Listing 6")
        assert page == GOLDEN.read_text(encoding="utf-8")

    def test_incremental_compiler_matches_golden_file(self, interface):
        compiler = IncrementalCompiler(title="Listing 6")
        page = compiler.compile(interface)
        assert page.html() == GOLDEN.read_text(encoding="utf-8")


# ----------------------------------------------------------------------
# toggle buttons render as real checkboxes (the once-dead branch)
# ----------------------------------------------------------------------
class TestToggleCheckbox:
    def test_toggle_widget_renders_checkbox_control(self, interface):
        # LISTING_6 mines a slider and a presence toggle (Toggle TOP)
        names = [w.widget_type.name for w in interface.widgets]
        assert "toggle_button" in names
        page = compile_html(interface)
        assert 'type="checkbox"' in page
        # the checked state selects the subtree's choice index, recorded
        # in data-on for the page script
        assert 'data-on="' in page

    def test_checkbox_on_index_points_at_the_subtree_choice(self, interface):
        from repro.compiler.html import _checkbox_on_index, build_choice_list

        toggle = next(
            w for w in interface.widgets if w.widget_type.name == "toggle_button"
        )
        choices = build_choice_list(toggle)
        on_index = _checkbox_on_index(toggle, choices)
        assert on_index is not None
        assert choices[on_index] is not None  # a real subtree, not (none)
        assert not isinstance(choices[on_index], str)


# ----------------------------------------------------------------------
# patch-apply parity at every append, all bundled families
# ----------------------------------------------------------------------
class TestPatchParity:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_patch_stream_equals_full_recompile_at_every_append(self, family):
        asts = _family_log(family)
        session = InterfaceSession()
        state = None
        step = max(1, len(asts) // 5)
        for start in range(0, len(asts), step):
            result = session.append(asts[start : start + step])
            patch = session.compile_patch(limit=200)
            state = apply_patch(state, patch)
            assert page_html(state) == compile_html(result.interface, limit=200)

    def test_compile_is_byte_identical_to_compile_html(self):
        asts = _family_log("onehot")
        session = InterfaceSession()
        for start in range(0, len(asts), 12):
            result = session.append(asts[start : start + 12])
            assert session.compile(limit=200) == compile_html(
                result.interface, limit=200
            )

    def test_noop_append_emits_an_empty_patch(self):
        asts = _family_log("onehot")
        session = InterfaceSession()
        session.append(asts[:20])
        session.compile_patch(limit=200)
        # re-compiling the unchanged interface patches nothing
        patch = session.compile_patch(limit=200)
        assert patch["kind"] == "patch"
        assert patch["blocks"] == {}
        assert patch["closure_set"] == {}
        assert patch["closure_del"] == []
        assert session._compiler.stats.pages_reused >= 1


# ----------------------------------------------------------------------
# per-widget artifacts
# ----------------------------------------------------------------------
class TestWidgetArtifacts:
    def test_clean_widget_artifacts_are_byte_stable_across_appends(self):
        """On the one-hot workload the nested f-subtree widgets stay
        clean: their artifacts must be reused (same object, same bytes),
        and only the hot widget re-renders."""
        asts = _family_log("onehot")
        session = InterfaceSession()
        session.append(asts[:14])
        session.compile(limit=200)
        compiler = session._compiler
        snapshot = {
            key: (art.fingerprint, art.kind, art.body)
            for key, art in compiler._artifacts.items()
        }
        rendered_before = compiler.stats.widgets_rendered
        session.append(asts[14:30])
        session.compile(limit=200)
        assert compiler.stats.widgets_reused > 0
        for key, (fingerprint, kind, body) in snapshot.items():
            art = compiler._artifacts[key]
            if art.fingerprint == fingerprint:
                # unchanged content hash => byte-identical rendering
                assert (art.kind, art.body) == (kind, body)
        # not everything re-rendered
        n_rendered = compiler.stats.widgets_rendered - rendered_before
        assert n_rendered < len(compiler._artifacts)

    def test_widget_fingerprint_is_content_addressed(self, interface):
        widgets = list(interface.widgets)
        fps = [widget_fingerprint(w) for w in widgets]
        assert len(set(fps)) == len(fps)
        # deterministic across calls (no process salt)
        assert fps == [widget_fingerprint(w) for w in widgets]


# ----------------------------------------------------------------------
# closure slices and execution, with and without a database
# ----------------------------------------------------------------------
class TestClosureSlices:
    def _database(self):
        db = Database()
        db.add(Table("t", ["a", "b", "x", "y", "z", "g", "m"], [(1, 2, 0, 1, 5, 7, 3)]))
        return db

    def test_parity_with_database(self):
        asts = _family_log("onehot")[:30]
        db = self._database()
        session = InterfaceSession()
        for start in range(0, len(asts), 10):
            result = session.append(asts[start : start + 10])
            incremental = session.compile(database=db, limit=120)
            assert incremental == compile_html(
                result.interface, database=db, limit=120
            )

    def test_clean_combinations_replay_instead_of_executing(self):
        asts = _family_log("onehot")
        db = self._database()
        session = InterfaceSession()
        session.append(asts[:14])
        session.compile(database=db, limit=150)
        compiler = session._compiler
        session.append(asts[14:24])
        executions_before = compiler.stats.executions
        session.compile(database=db, limit=150)
        assert compiler.stats.combos_replayed > 0
        # replayed combinations did not hit the database again
        n_executed = compiler.stats.executions - executions_before
        assert n_executed < compiler.stats.combos_rendered

    def test_database_switch_recreates_the_compiler(self):
        session = InterfaceSession()
        session.append_sql(list(LISTING_6))
        session.compile(limit=64)
        first = session._compiler
        session.compile(database=self._database(), limit=64)
        assert session._compiler is not first


# ----------------------------------------------------------------------
# patch wire format
# ----------------------------------------------------------------------
class TestPatchWireFormat:
    def _page(self, statements, title="P"):
        compiler = IncrementalCompiler(title=title, limit=64)
        return compiler.compile(generate_iface(statements))

    def test_version_is_stamped_and_checked(self, interface):
        compiler = IncrementalCompiler(limit=64)
        page = compiler.compile(interface)
        state = page.to_state()
        assert state["version"] == PATCH_VERSION
        bad = dict(state, version=PATCH_VERSION + 1)
        with pytest.raises(CompileError, match="version"):
            CompiledPage.from_state(bad)
        with pytest.raises(CompileError, match="version"):
            apply_patch(None, {"version": PATCH_VERSION + 1, "kind": "page"})

    def test_patch_without_base_is_rejected(self, interface):
        page = self._page(list(LISTING_6))
        patch = make_patch(page, page)
        assert patch["kind"] == "patch"
        with pytest.raises(CompileError, match="base"):
            apply_patch(None, patch)

    def test_base_fingerprint_mismatch_is_rejected(self):
        page = self._page(list(LISTING_6))
        patch = make_patch(page, page)
        foreign = dict(page.to_state(), fingerprint="0" * 16)
        with pytest.raises(CompileError, match="mismatch"):
            apply_patch(foreign, patch)

    def test_title_change_forces_a_full_page_patch(self):
        before = self._page(list(LISTING_6), title="A")
        after = self._page(list(LISTING_6), title="B")
        patch = make_patch(before, after)
        assert patch["kind"] == "page"
        assert page_html(apply_patch(None, patch)) == after.html()

    def test_state_round_trips(self, interface):
        compiler = IncrementalCompiler(limit=64)
        page = compiler.compile(interface)
        clone = CompiledPage.from_state(page.to_state())
        assert clone.html() == page.html()
        assert clone.to_state() == page.to_state()


# ----------------------------------------------------------------------
# persisted page state (import_state)
# ----------------------------------------------------------------------
class TestImportState:
    def test_fresh_compiler_replays_adopted_slices(self, interface):
        donor = IncrementalCompiler(limit=64)
        state = donor.compile(interface).to_state()

        fresh = IncrementalCompiler(limit=64)
        adopted = fresh.import_state(state)
        assert adopted == len(state["closure"])
        page = fresh.compile(interface)
        assert page.html() == page_html(state)
        assert fresh.stats.combos_replayed == adopted
        assert fresh.stats.combos_rendered == 0

    def test_foreign_initial_sql_adopts_nothing(self, interface):
        donor = IncrementalCompiler(limit=64)
        state = donor.compile(interface).to_state()
        other = generate_iface(
            ["SELECT a FROM s WHERE b = 1", "SELECT a FROM s WHERE b = 2"]
        )
        fresh = IncrementalCompiler(limit=64)
        fresh.compile(other)  # arms a different initial query
        assert fresh.import_state(state) == 0


# ----------------------------------------------------------------------
# session guards
# ----------------------------------------------------------------------
class TestSessionGuards:
    def test_compile_before_first_append_raises(self):
        session = InterfaceSession()
        with pytest.raises(LogError):
            session.compile()
        with pytest.raises(LogError):
            session.compile_patch()
