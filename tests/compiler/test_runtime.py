"""In-memory executor tests."""

import pytest

from repro import parse_sql
from repro.compiler import Database, Table, execute, render_text
from repro.errors import CompileError, SchemaError


@pytest.fixture
def db():
    database = Database()
    database.add(
        Table(
            "ontime",
            ["Month", "Day", "Delay", "DestState", "flights", "canceled", "distance", "carrier"],
            [
                (9, 3, 10, "CA", 1, 0, 100, "AA"),
                (9, 3, 20, "NY", 1, 1, 200, "UA"),
                (9, 4, 5, "CA", 1, 0, 150, "AA"),
                (8, 3, None, "TX", 1, 0, 300, "DL"),
            ],
        )
    )
    return database


def run(sql, db):
    return execute(parse_sql(sql), db)


class TestProjection:
    def test_column_projection(self, db):
        result = run("SELECT DestState FROM ontime", db)
        assert result.columns == ["DestState"]
        assert len(result) == 4

    def test_star(self, db):
        result = run("SELECT * FROM ontime", db)
        assert result.columns == db.get("ontime").columns

    def test_alias(self, db):
        result = run("SELECT Delay AS d FROM ontime", db)
        assert result.columns == ["d"]

    def test_arithmetic(self, db):
        result = run("SELECT distance / 100 FROM ontime WHERE Month = 8", db)
        assert result.rows == [(3.0,)]

    def test_case(self, db):
        result = run(
            "SELECT CASE carrier WHEN 'AA' THEN 'AA' ELSE 'Other' END FROM ontime",
            db,
        )
        assert [r[0] for r in result.rows] == ["AA", "Other", "AA", "Other"]

    def test_floor(self, db):
        result = run("SELECT FLOOR(distance / 90) FROM ontime", db)
        assert [r[0] for r in result.rows] == [1, 2, 1, 3]

    def test_cast(self, db):
        result = run("SELECT CAST(distance AS FLOAT) FROM ontime WHERE Day = 4", db)
        assert result.rows == [(150.0,)]


class TestFiltering:
    def test_equality(self, db):
        assert len(run("SELECT * FROM ontime WHERE Month = 9", db)) == 3

    def test_conjunction(self, db):
        assert len(run("SELECT * FROM ontime WHERE Month = 9 AND Day = 3", db)) == 2

    def test_disjunction(self, db):
        assert len(run("SELECT * FROM ontime WHERE Month = 8 OR Day = 4", db)) == 2

    def test_between(self, db):
        assert len(run("SELECT * FROM ontime WHERE distance BETWEEN 120 AND 250", db)) == 2

    def test_in_list(self, db):
        assert len(run("SELECT * FROM ontime WHERE DestState IN ('CA', 'TX')", db)) == 3

    def test_like(self, db):
        assert len(run("SELECT * FROM ontime WHERE carrier LIKE 'A%'", db)) == 2

    def test_is_null(self, db):
        assert len(run("SELECT * FROM ontime WHERE Delay IS NULL", db)) == 1
        assert len(run("SELECT * FROM ontime WHERE Delay IS NOT NULL", db)) == 3

    def test_not(self, db):
        assert len(run("SELECT * FROM ontime WHERE NOT Month = 9", db)) == 1

    def test_null_comparison_excludes_row(self, db):
        assert len(run("SELECT * FROM ontime WHERE Delay > 0", db)) == 3


class TestAggregation:
    def test_count_star(self, db):
        assert run("SELECT COUNT(*) FROM ontime", db).rows == [(4,)]

    def test_count_ignores_nulls(self, db):
        assert run("SELECT COUNT(Delay) FROM ontime", db).rows == [(3,)]

    def test_sum_avg_min_max(self, db):
        row = run("SELECT SUM(Delay), AVG(Delay), MIN(Delay), MAX(Delay) FROM ontime", db).rows[0]
        assert row == (35, pytest.approx(35 / 3), 5, 20)

    def test_group_by(self, db):
        result = run(
            "SELECT DestState, COUNT(Delay) FROM ontime GROUP BY DestState", db
        )
        assert dict(result.rows)["CA"] == 2

    def test_having(self, db):
        result = run(
            "SELECT DestState, SUM(flights) FROM ontime "
            "GROUP BY DestState HAVING SUM(flights) > 1",
            db,
        )
        assert result.rows == [("CA", 2)]

    def test_having_without_group(self, db):
        """Listing 3 has HAVING without GROUP BY."""
        result = run(
            "SELECT SUM(flights) FROM ontime WHERE canceled = 0 "
            "HAVING SUM(flights) > 1",
            db,
        )
        assert result.rows == [(3,)]

    def test_count_distinct(self, db):
        assert run("SELECT COUNT(DISTINCT carrier) FROM ontime", db).rows == [(3,)]


class TestOrderingAndLimits:
    def test_order_by_desc(self, db):
        result = run("SELECT Delay FROM ontime WHERE Delay IS NOT NULL ORDER BY Delay DESC", db)
        assert [r[0] for r in result.rows] == [20, 10, 5]

    def test_top(self, db):
        assert len(run("SELECT TOP 2 * FROM ontime", db)) == 2

    def test_limit(self, db):
        assert len(run("SELECT * FROM ontime LIMIT 3", db)) == 3

    def test_distinct(self, db):
        assert len(run("SELECT DISTINCT carrier FROM ontime", db)) == 3

    def test_order_with_nulls(self, db):
        result = run("SELECT Delay FROM ontime ORDER BY Delay", db)
        assert result.rows[0] == (None,)


class TestSubqueriesAndErrors:
    def test_from_subquery(self, db):
        result = run(
            "SELECT * FROM (SELECT DestState FROM ontime WHERE Month = 9)", db
        )
        assert len(result) == 3

    def test_unknown_table_raises(self, db):
        with pytest.raises(SchemaError):
            run("SELECT * FROM missing", db)

    def test_unknown_column_raises(self, db):
        with pytest.raises(SchemaError):
            run("SELECT bogus FROM ontime", db)

    def test_join_unsupported(self, db):
        with pytest.raises(CompileError):
            run("SELECT * FROM ontime, ontime", db)

    def test_union_unsupported(self, db):
        with pytest.raises(CompileError):
            run("SELECT Month FROM ontime UNION SELECT Day FROM ontime", db)

    def test_duplicate_column_table_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", ["a", "A"])


class TestRenderText:
    def test_header_and_rows(self, db):
        text = render_text(run("SELECT DestState FROM ontime WHERE Month = 8", db))
        assert "DestState" in text
        assert "TX" in text

    def test_truncation_notice(self, db):
        table = Table("t", ["x"], [(i,) for i in range(30)])
        assert "30 rows total" in render_text(table, max_rows=5)
