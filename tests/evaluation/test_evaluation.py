"""Recall and runtime harness tests (small instances)."""

import pytest

from repro.errors import LogError
from repro.evaluation import (
    cross_client_matrix,
    format_series,
    format_table,
    measure_pipeline,
    multi_client_recall,
    recall_curve,
    recall_histogram,
    scalability_sweep,
    sparkline,
    window_lca_sweep,
)
from repro.logs import QueryLog, SDSSLogGenerator


@pytest.fixture(scope="module")
def sdss_gen():
    return SDSSLogGenerator(seed=0)


class TestRecallCurve:
    def test_monotone_ish_and_reaches_one(self, sdss_gen):
        log = sdss_gen.client_log("C1", "object_lookup", 200)
        curve = recall_curve(log, training_sizes=[2, 10, 50], holdout_size=50,
                             window_size=200)
        recalls = [p.recall for p in curve.points]
        assert recalls[-1] == 1.0
        assert curve.first_full_recall() is not None

    def test_window_too_large_raises(self, sdss_gen):
        log = sdss_gen.client_log("C1", "object_lookup", 100)
        with pytest.raises(LogError):
            recall_curve(log, [10], window_size=200)

    def test_training_plus_holdout_bounded(self, sdss_gen):
        log = sdss_gen.client_log("C1", "object_lookup", 200)
        with pytest.raises(LogError):
            recall_curve(log, [150], holdout_size=100, window_size=200)

    def test_as_rows(self, sdss_gen):
        log = sdss_gen.client_log("C1", "object_lookup", 200)
        curve = recall_curve(log, [5], holdout_size=50, window_size=200)
        assert curve.as_rows()[0][0] == 5


class TestMultiClient:
    def test_per_client_beats_total_budget(self, sdss_gen):
        """Figure 7a vs 7b: the same nominal training size n gives higher
        recall when it means n *per client*."""
        logs = [
            sdss_gen.client_log(f"C{i}", profile, 60)
            for i, profile in enumerate(
                ["object_lookup", "redshift_range", "neighbours"]
            )
        ]
        total = multi_client_recall(logs, [30], holdout_size=30, per_client=False)
        per_client = multi_client_recall(logs, [30], holdout_size=30, per_client=True)
        assert per_client.points[0].recall >= total.points[0].recall

    def test_holdout_too_large_raises(self, sdss_gen):
        logs = [sdss_gen.client_log("C1", "object_lookup", 10)]
        with pytest.raises(LogError):
            multi_client_recall(logs, [5], holdout_size=100)


class TestCrossClient:
    def test_same_profile_clients_express_each_other(self, sdss_gen):
        clients = {
            "A": sdss_gen.client_log("A", "object_lookup", 60),
            "B": sdss_gen.client_log("B", "object_lookup", 60),
            "C": sdss_gen.client_log("C", "redshift_range", 60),
        }
        matrix = cross_client_matrix(clients, n_queries=60)
        assert matrix["A"]["B"] > 0.9      # same analysis
        assert matrix["A"]["C"] < 0.1      # different analysis

    def test_histogram_bins_sum_to_cells(self, sdss_gen):
        clients = {
            "A": sdss_gen.client_log("A", "object_lookup", 40),
            "B": sdss_gen.client_log("B", "neighbours", 40),
        }
        matrix = cross_client_matrix(clients, n_queries=40)
        histogram = recall_histogram(matrix, bins=5)
        assert sum(count for _edge, count in histogram) == 2


class TestRuntime:
    def _log(self, sdss_gen, n=30):
        return sdss_gen.client_log("C1", "object_lookup", n).asts()

    def test_measure_pipeline_fields(self, sdss_gen):
        m = measure_pipeline(self._log(sdss_gen), window=2, lca_pruning=True)
        assert m.n_queries == 30
        assert m.total_seconds > 0

    def test_lca_pruning_reduces_diffs(self, sdss_gen):
        queries = self._log(sdss_gen)
        pruned = measure_pipeline(queries, window=10, lca_pruning=True)
        full = measure_pipeline(queries, window=10, lca_pruning=False)
        assert pruned.n_diffs <= full.n_diffs

    def test_window_sweep_shape(self, sdss_gen):
        rows = window_lca_sweep(self._log(sdss_gen), windows=[2, 5])
        assert len(rows) == 4  # 2 windows x {pruned, unpruned}

    def test_scalability_sweep_ordering(self, sdss_gen):
        logs = {10: self._log(sdss_gen, 10), 30: self._log(sdss_gen, 30)}
        rows = scalability_sweep(logs)
        assert rows[0].n_queries < rows[1].n_queries
        assert rows[0].n_edges <= rows[1].n_edges


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.125" in text

    def test_sparkline_range(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_format_series(self):
        text = format_series("recall", [1, 2], [0.5, 1.0])
        assert "recall" in text and "2:1.00" in text
