"""Sharded batch generation: generate_many(workers=N) semantics."""

import pickle

import pytest

from repro.api import generate_many, generate_segmented, PipelineObserver
from repro.core.options import PipelineOptions
from repro.logs import SDSSLogGenerator


@pytest.fixture(scope="module")
def client_logs():
    """Four independent per-client SDSS logs (the fig7 workload shape)."""
    return [
        log.asts()
        for log in SDSSLogGenerator(seed=0).clients(4, n_queries=30).values()
    ]


def _summaries(results):
    return [r.interface.widget_summary() for r in results]


class TestWorkerParity:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_matches_serial(self, client_logs, workers):
        """Acceptance: workers=N yields the same interfaces, in the same
        order, as workers=1."""
        serial = generate_many(client_logs, workers=1)
        parallel = generate_many(client_logs, workers=workers)
        assert _summaries(parallel) == _summaries(serial)
        assert [r.run.n_queries for r in parallel] == [
            r.run.n_queries for r in serial
        ]
        assert [r.run.n_pairs_compared for r in parallel] == [
            r.run.n_pairs_compared for r in serial
        ]

    def test_parallel_with_options(self, client_logs):
        options = PipelineOptions(window=None)
        serial = generate_many(client_logs[:2], options=options)
        parallel = generate_many(client_logs[:2], options=options, workers=2)
        assert _summaries(parallel) == _summaries(serial)

    def test_parallel_results_are_complete(self, client_logs):
        for result in generate_many(client_logs, workers=2):
            assert result.run.stage("mine") is not None
            assert dict(result.provenance)["n_queries"] > 0
            # results crossed a process boundary once already; they must
            # survive another round trip (e.g. caching layers above us)
            clone = pickle.loads(pickle.dumps(result))
            assert clone.interface.widget_summary() == result.interface.widget_summary()

    def test_empty_batch(self):
        assert generate_many([], workers=4) == []

    def test_workers_none_and_one_are_serial(self, client_logs):
        assert _summaries(generate_many(client_logs[:1], workers=None)) == _summaries(
            generate_many(client_logs[:1], workers=1)
        )


class TestCrossProcessNodes:
    def test_node_pickle_drops_hash_caches(self):
        """The cached fingerprint is built on the per-process hash salt;
        it must not travel inside a pickle."""
        import pickle as _pickle

        from repro.sqlparser.parser import parse_sql

        node = parse_sql("SELECT a FROM t WHERE x = 1")
        assert node.fingerprint is not None  # populate the cache
        clone = _pickle.loads(_pickle.dumps(node))
        assert clone._fingerprint is None
        assert clone._size is None
        assert clone.equals(node)
        assert hash(clone) == hash(node)

    def test_nodes_pickled_under_a_different_hash_salt(self, tmp_path):
        """Simulate a spawn-start worker: a subprocess with its own hash
        salt pickles a parsed tree; the parent must still see it as equal
        to (and hash-compatible with) its own parse of the same SQL."""
        import os
        import pickle as _pickle
        import subprocess
        import sys

        from repro.sqlparser.parser import parse_sql

        out = tmp_path / "node.pickle"
        script = (
            "import pickle, sys\n"
            "sys.path.insert(0, sys.argv[2])\n"
            "from repro.sqlparser.parser import parse_sql\n"
            "n = parse_sql('SELECT a FROM t WHERE x = 1')\n"
            "n.fingerprint\n"
            "pickle.dump(n, open(sys.argv[1], 'wb'))\n"
        )
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = {k: v for k, v in os.environ.items() if k != "PYTHONHASHSEED"}
        subprocess.run(
            [sys.executable, "-c", script, str(out), src],
            check=True,
            env=env,
        )
        foreign = _pickle.load(open(out, "rb"))
        local = parse_sql("SELECT a FROM t WHERE x = 1")
        assert foreign.equals(local)
        assert hash(foreign) == hash(local)
        assert {foreign} == {local}


class TestWorkerValidation:
    def test_workers_must_be_positive(self, client_logs):
        with pytest.raises(ValueError, match="workers"):
            generate_many(client_logs, workers=0)

    def test_observers_refused_in_parallel(self, client_logs):
        with pytest.raises(ValueError, match="observers"):
            generate_many(client_logs, observers=[PipelineObserver()], workers=2)

    def test_observers_fine_serially(self, client_logs):
        seen = []

        class Spy(PipelineObserver):
            def on_pipeline_end(self, pipeline, state, run):
                seen.append(run.n_queries)

        generate_many(client_logs[:2], observers=[Spy()], workers=1)
        assert len(seen) == 2


class TestSegmentedWorkers:
    def test_segmented_validates_like_generate_many(self):
        with pytest.raises(ValueError, match="workers"):
            generate_segmented(["SELECT a FROM t WHERE x = 1"], workers=0)
        with pytest.raises(ValueError, match="observers"):
            generate_segmented(
                ["SELECT a FROM t WHERE x = 1"],
                observers=[PipelineObserver()],
                workers=2,
            )

    def test_segmented_parallel_matches_serial(self):
        generator = SDSSLogGenerator(seed=1)
        mixed = generator.interleaved(2, n_queries=20).asts()
        serial = generate_segmented(mixed)
        parallel = generate_segmented(mixed, workers=2)
        assert _summaries(parallel) == _summaries(serial)
        assert [dict(r.provenance)["segment"] for r in parallel] == [
            dict(r.provenance)["segment"] for r in serial
        ]

    def test_shared_cache_dir_across_workers(self, client_logs, tmp_path):
        """All workers share one store; a second parallel batch hits it."""
        options = PipelineOptions(cache_dir=str(tmp_path))
        cold = generate_many(client_logs, options=options, workers=2)
        warm = generate_many(client_logs, options=options, workers=2)
        assert all(r.run.stage("cache").stats["hit"] is False for r in cold)
        assert all(r.run.stage("cache").stats["hit"] is True for r in warm)
        assert all(r.run.stage("mine").stats["skipped"] is True for r in warm)
        assert _summaries(warm) == _summaries(cold)
