"""CLI surface of the daemon work: ``serve --follow``, interrupt
handling, ``python -m repro daemon``, and ``cache stats --remote``."""

import json
import shutil
import socket as socket_mod
import tempfile
import threading
import time

import pytest

from repro.__main__ import main
from repro.cache.client import StoreClient
from repro.cache.store import GraphStore
from repro.service import SessionPool


@pytest.fixture
def sock_path():
    workdir = tempfile.mkdtemp(prefix="repro-sock-", dir="/tmp")
    yield f"{workdir}/d.sock"
    shutil.rmtree(workdir, ignore_errors=True)


@pytest.fixture
def multi_log(tmp_path):
    rows = [
        {"sql": f"SELECT a FROM t WHERE x = {i}", "client": "alice", "sequence": i}
        for i in range(4)
    ] + [
        {"sql": f"SELECT b FROM u WHERE y = {i}", "client": "bob", "sequence": i}
        for i in range(3)
    ]
    path = tmp_path / "multi.jsonl"
    path.write_text(
        "\n".join(json.dumps(row) for row in rows) + "\n", encoding="utf-8"
    )
    return str(path)


class TestServeFollow:
    def test_follow_json_is_a_jsonl_stream_of_results_then_summary(
        self, multi_log, capsys
    ):
        assert main(["serve", multi_log, "--pool-size", "2", "--batch-size",
                     "2", "--follow", "--json"]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        results, summary = lines[:-1], lines[-1]
        # alice: 4 queries / batch 2 -> 2 batches; bob: 3 -> 2 batches
        assert len(results) == 4
        assert all(event["event"] == "result" for event in results)
        assert all(event["ok"] for event in results)
        assert {event["client"] for event in results} == {"alice", "bob"}
        # the running n_queries per client grows batch by batch
        alice = [e["n_queries"] for e in results if e["client"] == "alice"]
        assert alice == [2, 4]
        assert summary["event"] == "drained"
        assert summary["clients"]["alice"]["n_queries"] == 4
        assert summary["clients"]["bob"]["n_queries"] == 3

    def test_follow_human_prints_live_lines(self, multi_log, capsys):
        assert main(["serve", multi_log, "--pool-size", "1", "--batch-size",
                     "4", "--follow"]) == 0
        out = capsys.readouterr().out
        assert "[alice]" in out and "[bob]" in out
        assert "widget(s) in" in out  # the live per-batch line
        assert "served" in out  # the summary still follows

    def test_follow_compile_patch_streams_foldable_patches(
        self, multi_log, capsys
    ):
        from repro.compiler.incremental import apply_patch, page_html

        assert main(["serve", multi_log, "--pool-size", "2", "--batch-size",
                     "2", "--follow", "--json", "--compile", "patch"]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        results = lines[:-1]
        assert all("compiled" in event for event in results)
        # each client's first event is a full page, later ones fold on top
        states = {}
        for event in results:
            states[event["client"]] = apply_patch(
                states.get(event["client"]), event["compiled"]
            )
        for state in states.values():
            assert page_html(state).startswith("<!DOCTYPE html>")

    def test_follow_compile_human_annotates_lines(self, multi_log, capsys):
        assert main(["serve", multi_log, "--pool-size", "1", "--batch-size",
                     "4", "--follow", "--compile", "patch"]) == 0
        out = capsys.readouterr().out
        # single-batch clients compile once: a full page patch each
        assert "full page patch" in out

    def test_compile_requires_follow(self, multi_log, capsys):
        assert main(["serve", multi_log, "--compile", "page"]) == 2
        assert "--compile requires --follow" in capsys.readouterr().err


class TestServeInterrupt:
    def test_ctrl_c_mid_replay_reports_partial_and_exits_130(
        self, multi_log, capsys, monkeypatch
    ):
        submitted = []
        original = SessionPool.submit

        def interrupting_submit(self, client_id, batch):
            if len(submitted) >= 2:
                raise KeyboardInterrupt
            submitted.append(client_id)
            return original(self, client_id, batch)

        monkeypatch.setattr(SessionPool, "submit", interrupting_submit)
        assert main(["serve", multi_log, "--pool-size", "1", "--batch-size",
                     "2", "--json"]) == 130
        payload = json.loads(capsys.readouterr().out)
        assert payload["interrupted"] is True
        # what completed before the interrupt is still reported
        assert payload["pool"]["n_batches"] == 2
        assert payload["clients"]  # partial results, not silence

    def test_ctrl_c_human_mode_labels_the_partial_results(
        self, multi_log, capsys, monkeypatch
    ):
        monkeypatch.setattr(
            SessionPool,
            "submit",
            lambda self, client_id, batch: (_ for _ in ()).throw(
                KeyboardInterrupt()
            ),
        )
        assert main(["serve", multi_log, "--pool-size", "1"]) == 130
        out = capsys.readouterr().out
        assert "partially served" in out
        assert "completed batches only" in out


class TestDaemonCommand:
    def test_daemon_serves_until_shutdown_rpc(self, tmp_path, sock_path, capsys):
        cache_dir = tmp_path / "store"
        rc: list[int] = []
        thread = threading.Thread(
            target=lambda: rc.append(
                main(["daemon", "--cache-dir", str(cache_dir),
                      "--socket", sock_path])
            ),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 10
        client = StoreClient(sock_path, timeout=2.0)
        while time.monotonic() < deadline:
            try:
                client.ping()
                break
            except Exception:
                time.sleep(0.05)
        else:
            raise AssertionError("daemon never came up")

        # a real client can use it while it runs
        store = GraphStore(tmp_path / "client", remote=sock_path)
        assert store.format == "remote"

        client.call("shutdown")
        thread.join(timeout=10)
        assert rc == [0]
        assert not socket_mod.socket(
            socket_mod.AF_UNIX
        ).connect_ex(sock_path) == 0  # nobody is listening any more
        out = capsys.readouterr().out
        assert "store daemon" in out and sock_path in out


class TestCacheStatsRemote:
    def _populate(self, tmp_path, sock_path):
        store = GraphStore(tmp_path / "client", remote=sock_path)
        from tests.cache.test_packed_store import _mined, _save_all

        _save_all(store, _mined())

    def test_remote_stats_include_the_daemon_block(
        self, tmp_path, sock_path, capsys
    ):
        from repro.service import running_daemon

        client_dir = tmp_path / "client-dir"
        client_dir.mkdir()
        with running_daemon(tmp_path / "served", sock_path):
            self._populate(tmp_path, sock_path)
            assert main(["cache", "stats", "--cache-dir", str(client_dir),
                         "--remote", sock_path, "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["n_keys"] == 1
            assert payload["daemon"]["socket"] == sock_path
            assert payload["daemon"]["clients"]

            assert main(["cache", "stats", "--cache-dir", str(client_dir),
                         "--remote", sock_path]) == 0
            out = capsys.readouterr().out
            assert "daemon pid" in out
            assert "client " in out and "request(s)" in out

    def test_unreachable_daemon_warns_and_reports_locally(
        self, tmp_path, capsys
    ):
        client_dir = tmp_path / "client-dir"
        client_dir.mkdir()
        assert main(["cache", "stats", "--cache-dir", str(client_dir),
                     "--remote", "/tmp/absent-repro.sock", "--json"]) == 0
        captured = capsys.readouterr()
        assert "no daemon answered" in captured.err
        payload = json.loads(captured.out)
        assert payload["n_keys"] == 0
        assert "daemon" not in payload
