"""Session persistence: save → resume across (simulated) processes."""

import pytest

from repro.api import InterfaceSession, generate
from repro.cache.serialize import load_graph
from repro.core.mapper import map_interactions
from repro.core.options import PipelineOptions
from repro.errors import CacheError, LogError
from repro.logs import SDSSLogGenerator


@pytest.fixture(scope="module")
def sdss_asts():
    return SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 60).asts()


class TestSaveResume:
    def test_resume_restores_result_without_mining(self, sdss_asts, tmp_path):
        path = tmp_path / "session.jsonl"
        session = InterfaceSession()
        session.append(sdss_asts[:40])
        session.save(path)

        resumed = InterfaceSession.resume(path)
        assert len(resumed) == 40
        assert resumed.n_pairs_compared == session.n_pairs_compared
        assert resumed.result is not None
        assert dict(resumed.result.provenance)["resumed"] is True
        # the resume's mapping pass aligned zero pairs
        assert resumed.result.run.n_pairs_compared == 0
        assert (
            resumed.interface.widget_summary()
            == session.interface.widget_summary()
        )

    def test_resumed_session_appends_equal_one_shot(self, sdss_asts, tmp_path):
        """Acceptance: save → resume → append is result-equivalent to a
        one-shot generate over the whole log."""
        path = tmp_path / "session.jsonl"
        session = InterfaceSession()
        session.append(sdss_asts[:30])
        session.save(path)

        resumed = InterfaceSession.resume(path)
        result = resumed.append(sdss_asts[30:])
        full = generate(sdss_asts)
        assert result.interface.widget_summary() == full.interface.widget_summary()
        assert result.interface.cost == pytest.approx(full.interface.cost)
        # pair-count invariant survives the round trip
        assert resumed.n_pairs_compared == full.run.n_pairs_compared

    def test_snapshot_loads_as_bare_graph(self, sdss_asts, tmp_path):
        """The snapshot is an ordinary graph file: load_graph + mapping
        reproduces the session's widgets without an InterfaceSession."""
        path = tmp_path / "session.jsonl"
        session = InterfaceSession()
        session.append(sdss_asts[:40])
        session.save(path)
        graph, stats, extra = load_graph(path)
        assert graph.summary()["vertices"] == 40
        assert stats.n_pairs_compared == session.n_pairs_compared
        assert extra["session"]["n_appends"] == 1
        widgets = map_interactions(graph.diffs)
        assert [
            (w.widget_type.name, str(w.path)) for w in widgets
        ] == [
            (w.widget_type.name, str(w.path))
            for w in session.interface.widgets
        ]


class TestResumeValidation:
    def test_save_before_append_refused(self, tmp_path):
        with pytest.raises(LogError, match="before the first append"):
            InterfaceSession().save(tmp_path / "empty.jsonl")

    def test_options_mismatch_refused(self, sdss_asts, tmp_path):
        path = tmp_path / "session.jsonl"
        session = InterfaceSession(options=PipelineOptions(window=2))
        session.append(sdss_asts[:20])
        session.save(path)
        with pytest.raises(CacheError, match="different options"):
            InterfaceSession.resume(path, options=PipelineOptions(window=None))

    def test_matching_options_accepted(self, sdss_asts, tmp_path):
        path = tmp_path / "session.jsonl"
        session = InterfaceSession(options=PipelineOptions(window=3))
        session.append(sdss_asts[:20])
        session.save(path)
        resumed = InterfaceSession.resume(path, options=PipelineOptions(window=3))
        assert len(resumed) == 20

    def test_bare_graph_file_refused(self, sdss_asts, tmp_path):
        from repro.cache.serialize import save_graph
        from repro.graph.build import build_interaction_graph

        path = tmp_path / "bare.jsonl"
        save_graph(path, build_interaction_graph(sdss_asts[:10], window=2))
        with pytest.raises(CacheError, match="not a session snapshot"):
            InterfaceSession.resume(path)


class TestIncrementalMapping:
    def test_appends_reuse_untouched_partitions(self, sdss_asts):
        """Acceptance: append() re-solves only partitions whose diff lists
        changed; at least some partitions are reused on later appends."""
        session = InterfaceSession()
        first = session.append(sdss_asts[:30])
        map_stats = first.run.stage("map").stats
        assert map_stats["n_partitions_reused"] == 0
        assert map_stats["n_partitions_rebuilt"] == map_stats["n_partitions"]

        second = session.append(sdss_asts[30:])
        map_stats = second.run.stage("map").stats
        assert map_stats["n_partitions_reused"] > 0
        assert (
            map_stats["n_partitions_reused"] + map_stats["n_partitions_rebuilt"]
            == map_stats["n_partitions"]
        )

    def test_incremental_mapping_preserves_equivalence(self, sdss_asts):
        session = InterfaceSession()
        for start in range(0, 60, 12):
            result = session.append(sdss_asts[start:start + 12])
        full = generate(sdss_asts)
        assert result.interface.widget_summary() == full.interface.widget_summary()
