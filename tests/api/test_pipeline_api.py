"""Staged pipeline API: composition, observers, immutable results."""

import dataclasses
import json

import pytest

from repro import parse_sql
from repro.api import (
    GenerationResult,
    MapStage,
    MergeStage,
    MineStage,
    ParseStage,
    Pipeline,
    PipelineObserver,
    PipelineState,
    SegmentStage,
    generate,
)
from repro.core.options import PipelineOptions
from repro.errors import LogError
from repro.logs import LISTING_6, listing_4_log


class TestComposition:
    def test_default_stage_order_is_figure_2a(self):
        assert Pipeline.default().stage_names == ("parse", "mine", "map", "merge")

    def test_stages_run_in_composition_order(self):
        seen = []

        class Tracer(PipelineObserver):
            def on_stage_start(self, stage, state):
                seen.append(("start", stage.name))

            def on_stage_end(self, stage, state, report):
                seen.append(("end", stage.name))

        generate(list(LISTING_6), observers=[Tracer()])
        assert seen == [
            ("start", "parse"), ("end", "parse"),
            ("start", "mine"), ("end", "mine"),
            ("start", "map"), ("end", "map"),
            ("start", "merge"), ("end", "merge"),
        ]

    def test_pipeline_and_run_hooks_fire_once(self):
        events = []

        class Tracer(PipelineObserver):
            def on_pipeline_start(self, pipeline, state):
                events.append("pipeline_start")

            def on_pipeline_end(self, pipeline, state, run):
                events.append(("pipeline_end", run.n_queries))

        generate(list(LISTING_6), observers=[Tracer()])
        assert events == ["pipeline_start", ("pipeline_end", 3)]

    def test_custom_composition_subset(self):
        """A hand-rolled parse→mine pipeline stops where its stages stop."""
        pipeline = Pipeline([ParseStage(), MineStage()])
        state = PipelineState(
            options=pipeline.options, statements=list(LISTING_6)
        )
        state, reports, run = pipeline.run(state)
        assert [r.name for r in reports] == ["parse", "mine"]
        assert state.graph is not None and state.widgets is None
        assert run.n_pairs_compared == reports[1].stats["n_pairs_compared"]

    def test_stage_reports_carry_stats_and_timings(self):
        result = generate(list(LISTING_6))
        assert [r.name for r in result.run.stages] == [
            "parse", "mine", "map", "merge"
        ]
        mine = result.run.stage("mine")
        assert mine.stats["n_pairs_compared"] == result.run.n_pairs_compared
        assert all(r.seconds >= 0 for r in result.run.stages)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_out_of_order_composition_fails_loudly(self):
        pipeline = Pipeline([ParseStage(), MapStage()])  # map before mine
        state = PipelineState(options=pipeline.options, statements=list(LISTING_6))
        with pytest.raises(LogError):
            pipeline.run(state)


class TestSegmentStage:
    def test_mixed_log_splits_into_analyses(self):
        lookups = ["SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 2"]
        aggregates = [
            "SELECT dest, SUM(delay) FROM ontime GROUP BY dest",
            "SELECT dest, AVG(delay) FROM ontime GROUP BY dest",
        ]
        queries = [parse_sql(s) for s in lookups + aggregates]
        state = PipelineState(options=PipelineOptions(), queries=queries)
        state = SegmentStage().run(state)
        assert len(state.segments) == 2
        assert [len(s) for s in state.segments] == [2, 2]

    def test_interleaved_bursts_cluster_back_together(self):
        a = ["SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 2"]
        b = ["SELECT dest, SUM(delay) FROM ontime GROUP BY dest"]
        queries = [parse_sql(s) for s in a + b + a]
        state = PipelineState(options=PipelineOptions(), queries=queries)
        state = SegmentStage().run(state)
        assert len(state.segments) == 2
        assert len(state.segments[0]) == 4  # both lookup bursts merged

    def test_bad_threshold_rejected(self):
        with pytest.raises(LogError):
            SegmentStage(jump_threshold=0.0)


class TestImmutableResults:
    @pytest.fixture(scope="class")
    def result(self):
        return generate(list(LISTING_6), source="listing6")

    def test_result_fields_frozen(self, result):
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.interface = None
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.run = None

    def test_run_fields_frozen(self, result):
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.run.n_queries = 99

    def test_provenance_and_stats_read_only(self, result):
        with pytest.raises(TypeError):
            result.provenance["source"] = "tampered"
        with pytest.raises(TypeError):
            result.run.stage("mine").stats["n_pairs_compared"] = 0

    def test_provenance_contents(self, result):
        assert result.provenance["source"] == "listing6"
        assert result.provenance["stages"] == ["parse", "mine", "map", "merge"]
        assert result.provenance["window"] == 2

    def test_to_dict_is_json_serialisable(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["run"]["n_queries"] == 3
        assert payload["interface"]["n_widgets"] == result.interface.n_widgets
        assert [s["name"] for s in payload["run"]["stages"]] == [
            "parse", "mine", "map", "merge"
        ]


class TestShimRemoved:
    def test_precision_interfaces_facade_is_gone(self):
        """The pre-1.1 ``PrecisionInterfaces``/``last_run`` facade was a
        one-release deprecation shim; 1.2 removes it for good."""
        import repro

        assert not hasattr(repro, "PrecisionInterfaces")
        with pytest.raises(ImportError):
            from repro.core.pipeline import PrecisionInterfaces  # noqa: F401


class TestGenerateInputs:
    def test_accepts_sql_asts_and_querylog(self):
        log = listing_4_log(6)
        from_log = generate(log)
        from_asts = generate(log.asts())
        from_sql = generate(log.statements())
        assert (
            from_log.interface.widget_summary()
            == from_asts.interface.widget_summary()
            == from_sql.interface.widget_summary()
        )
        assert from_log.provenance["source"] == log.name

    def test_empty_log_rejected(self):
        with pytest.raises(LogError):
            generate([])

    def test_bare_string_rejected_with_clear_error(self):
        with pytest.raises(LogError, match="list of SQL statements"):
            generate("SELECT a FROM t WHERE x = 1")
