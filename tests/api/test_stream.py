"""Streaming session surface: stream(), astream(), and the memoised
closure membership the steady-state service path uses."""

import asyncio

import pytest

from repro.api import InterfaceSession, generate
from repro.errors import LogError
from repro.logs import SDSSLogGenerator
from repro.sqlparser.parser import parse_sql

SQL = [
    "SELECT a FROM t WHERE x = 1",
    "SELECT a FROM t WHERE x = 2",
    "SELECT a FROM t WHERE x = 5",
    "SELECT a FROM t WHERE x = 9",
]


@pytest.fixture(scope="module")
def sdss_asts():
    return SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 60).asts()


class TestStream:
    def test_yields_one_snapshot_per_batch(self, sdss_asts):
        session = InterfaceSession()
        batches = [sdss_asts[i : i + 15] for i in range(0, 60, 15)]
        snapshots = list(session.stream(batches))
        assert len(snapshots) == 4
        assert [s.provenance["n_appends"] for s in snapshots] == [1, 2, 3, 4]
        # each snapshot carries per-append stage reports
        for snapshot in snapshots:
            assert snapshot.run.stage("mine").stats["incremental"] is True
            assert snapshot.run.stage("map") is not None
            assert snapshot.run.stage("merge") is not None
        assert snapshots[-1] is session.result

    def test_stream_equals_one_shot(self, sdss_asts):
        session = InterfaceSession()
        last = None
        for last in session.stream([sdss_asts[i : i + 12] for i in range(0, 60, 12)]):
            pass
        full = generate(sdss_asts)
        assert last.interface.widget_summary() == full.interface.widget_summary()
        assert session.n_pairs_compared == full.run.n_pairs_compared

    def test_accepts_strings_nodes_and_batches(self):
        session = InterfaceSession()
        snapshots = list(
            session.stream(
                [
                    SQL[0],                      # bare statement
                    parse_sql(SQL[1]),           # bare AST
                    [SQL[2], parse_sql(SQL[3])], # mixed batch
                ]
            )
        )
        assert len(snapshots) == 3
        assert len(session) == 4
        assert (
            snapshots[-1].interface.widget_summary()
            == generate(SQL).interface.widget_summary()
        )

    def test_stream_is_lazy(self):
        """Batches must be pulled one at a time — a stream over an
        unbounded source must not be drained ahead of consumption."""
        pulled = []

        def source():
            for index in range(100):
                pulled.append(index)
                yield [f"SELECT a FROM t WHERE x = {index}"]

        session = InterfaceSession()
        stream = session.stream(source())
        next(stream)
        next(stream)
        assert len(pulled) == 2

    def test_empty_batch_raises(self):
        session = InterfaceSession()
        with pytest.raises(LogError):
            list(session.stream([[]]))

    def test_empty_iterable_yields_nothing(self):
        session = InterfaceSession()
        assert list(session.stream([])) == []
        assert session.result is None

    def test_steady_state_reuses_components(self, sdss_asts):
        session = InterfaceSession()
        last = None
        for last in session.stream([sdss_asts[i : i + 6] for i in range(0, 60, 6)]):
            pass
        merge_stats = last.run.stage("merge").stats
        assert (
            merge_stats["n_components_reused"] + merge_stats["n_components_merged"]
            == merge_stats["n_components"]
        )
        map_stats = last.run.stage("map").stats
        assert map_stats["n_partitions_reused"] > 0


class TestAstream:
    def test_async_iterable_source(self, sdss_asts):
        async def main():
            session = InterfaceSession()

            async def source():
                for i in range(0, 60, 20):
                    await asyncio.sleep(0)
                    yield sdss_asts[i : i + 20]

            snapshots = []
            async for snapshot in session.astream(source()):
                snapshots.append(snapshot)
            return session, snapshots

        session, snapshots = asyncio.run(main())
        assert len(snapshots) == 3
        full = generate(sdss_asts)
        assert (
            snapshots[-1].interface.widget_summary()
            == full.interface.widget_summary()
        )
        assert session.n_pairs_compared == full.run.n_pairs_compared

    def test_sync_iterable_source(self):
        async def main():
            session = InterfaceSession()
            return [s async for s in session.astream([SQL[:2], SQL[2:]])]

        snapshots = asyncio.run(main())
        assert len(snapshots) == 2
        assert (
            snapshots[-1].interface.widget_summary()
            == generate(SQL).interface.widget_summary()
        )

    def test_loop_stays_responsive(self, sdss_asts):
        """Appends run in a worker thread; a concurrent task must get
        scheduled while the session chews through a batch."""
        async def main():
            session = InterfaceSession()
            ticks = []

            async def ticker():
                while True:
                    ticks.append(1)
                    await asyncio.sleep(0.001)

            task = asyncio.create_task(ticker())
            async for _snapshot in session.astream([sdss_asts[:40]]):
                pass
            task.cancel()
            return ticks

        assert len(asyncio.run(main())) >= 1


class TestSessionExpresses:
    def test_memoised_membership_matches_interface(self, sdss_asts):
        session = InterfaceSession()
        session.append(sdss_asts[:40])
        suite = sdss_asts[:5] + sdss_asts[40:45]
        memoised = [session.expresses(q) for q in suite]
        plain = [session.interface.expresses(q) for q in suite]
        assert memoised == plain
        # repeated queries hit the proof cache and stay consistent
        assert [session.expresses(q) for q in suite] == memoised

    def test_accepts_raw_sql(self):
        session = InterfaceSession()
        session.append_sql(SQL)
        assert session.expresses("SELECT a FROM t WHERE x = 2") is True

    def test_before_first_append_raises(self):
        with pytest.raises(LogError, match="before the first append"):
            InterfaceSession().expresses("SELECT a FROM t")

    def test_cache_survives_clean_appends(self, sdss_asts):
        """Proof reuse across appends is keyed to widget identity: the
        verdicts must stay correct when appends rebuild the widget set."""
        session = InterfaceSession()
        session.append(sdss_asts[:30])
        target = sdss_asts[0]
        before = session.expresses(target)
        session.append(sdss_asts[30:])
        after = session.expresses(target)
        assert before is True and after is True
