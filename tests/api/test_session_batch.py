"""Incremental sessions and batch generation semantics."""

import pytest

from repro.api import InterfaceSession, generate, generate_many, generate_segmented
from repro.core.options import PipelineOptions
from repro.errors import LogError
from repro.logs import LISTING_6, SDSSLogGenerator, listing_4_log


@pytest.fixture(scope="module")
def sdss_asts():
    return SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 60).asts()


def _chunks(items, k):
    """Split into k contiguous increments (sizes as equal as possible)."""
    size, rem = divmod(len(items), k)
    out, start = [], 0
    for i in range(k):
        stop = start + size + (1 if i < rem else 0)
        out.append(items[start:stop])
        start = stop
    return out


class TestInterfaceSession:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_incremental_equals_one_shot(self, sdss_asts, k):
        """Acceptance: a log split into k increments yields the same widget
        set as one-shot generate() on the full log."""
        full = generate(sdss_asts)
        session = InterfaceSession()
        for chunk in _chunks(sdss_asts, k):
            result = session.append(chunk)
        assert result.interface.widget_summary() == full.interface.widget_summary()
        assert result.interface.cost == pytest.approx(full.interface.cost)

    @pytest.mark.parametrize("window", [2, 5, None])
    def test_incremental_equals_one_shot_across_windows(self, sdss_asts, window):
        options = PipelineOptions(window=window)
        full = generate(sdss_asts, options=options)
        session = InterfaceSession(options=options)
        for chunk in _chunks(sdss_asts, 3):
            result = session.append(chunk)
        assert result.interface.widget_summary() == full.interface.widget_summary()

    def test_append_never_rediffs_compared_pairs(self, sdss_asts):
        """Acceptance: per-append n_pairs_compared covers only new pairs and
        the counts sum to the one-shot total."""
        full = generate(sdss_asts)
        session = InterfaceSession()
        per_append = []
        for chunk in _chunks(sdss_asts, 3):
            result = session.append(chunk)
            per_append.append(result.run.n_pairs_compared)
        assert sum(per_append) == full.run.n_pairs_compared
        assert session.n_pairs_compared == full.run.n_pairs_compared
        # each later append re-diffed nothing: strictly fewer alignments
        # than a from-scratch build over the queries seen so far
        assert per_append[1] < full.run.n_pairs_compared
        assert per_append[2] < full.run.n_pairs_compared

    def test_append_sql_parses(self):
        session = InterfaceSession()
        result = session.append_sql(list(LISTING_6))
        assert result.interface.n_widgets == 2
        assert session.interface is result.interface

    def test_result_provenance_marks_incremental(self, sdss_asts):
        session = InterfaceSession()
        session.append(sdss_asts[:5])
        result = session.append(sdss_asts[5:10])
        assert result.provenance["incremental"] is True
        assert result.provenance["n_appends"] == 2
        assert (
            result.provenance["n_pairs_compared_total"]
            == session.n_pairs_compared
        )

    def test_observers_see_real_mining_stats(self, sdss_asts):
        """The run handed to on_pipeline_end must match the returned
        result's run, including the synthesized mine report."""
        from repro.api import PipelineObserver

        runs = []

        class Collector(PipelineObserver):
            def on_pipeline_end(self, pipeline, state, run):
                runs.append(run)

        session = InterfaceSession(observers=[Collector()])
        session.append(sdss_asts[:5])
        result = session.append(sdss_asts[5:10])
        assert runs[-1].n_pairs_compared == result.run.n_pairs_compared > 0
        assert runs[-1].mining_seconds == result.run.mining_seconds > 0
        assert runs[-1].stage("mine") is not None

    def test_session_state_introspection(self, sdss_asts):
        session = InterfaceSession()
        assert len(session) == 0 and session.result is None
        session.append(sdss_asts[:4])
        assert len(session) == 4
        assert len(session.queries) == 4

    def test_empty_append_rejected(self):
        session = InterfaceSession()
        with pytest.raises(LogError):
            session.append([])
        with pytest.raises(LogError):
            session.append_sql([])


class TestGenerateMany:
    def test_batch_preserves_order_and_matches_individual(self):
        logs = [
            listing_4_log(8).asts(),
            [  # a different analysis
                "SELECT dest, SUM(delay) FROM ontime GROUP BY dest",
                "SELECT dest, AVG(delay) FROM ontime GROUP BY dest",
            ],
            list(LISTING_6),
        ]
        batch = generate_many(logs)
        assert len(batch) == 3
        for log, result in zip(logs, batch):
            assert (
                result.interface.widget_summary()
                == generate(log).interface.widget_summary()
            )

    def test_empty_batch_yields_empty_list(self):
        assert generate_many([]) == []

    def test_empty_log_inside_batch_raises(self):
        with pytest.raises(LogError):
            generate_many([list(LISTING_6), []])

    def test_options_apply_to_every_log(self):
        logs = [listing_4_log(8).asts(), list(LISTING_6)]
        for result in generate_many(logs, options=PipelineOptions(window=None)):
            assert result.provenance["window"] is None


class TestGenerateSegmented:
    def test_mixed_log_yields_one_result_per_analysis(self):
        lookups = ["SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 2"]
        aggregates = [
            "SELECT dest, SUM(delay) FROM ontime GROUP BY dest",
            "SELECT dest, AVG(delay) FROM ontime GROUP BY dest",
        ]
        results = generate_segmented(lookups + aggregates)
        assert len(results) == 2
        assert [r.provenance["segment"] for r in results] == [0, 1]
        assert results[0].provenance["source"] == "sql/analysis-0"
        assert all(r.run.n_queries == 2 for r in results)

    def test_homogeneous_log_stays_whole(self):
        results = generate_segmented(list(LISTING_6))
        assert len(results) == 1
        assert results[0].run.n_queries == 3
