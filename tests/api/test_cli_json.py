"""The ``--json`` output mode of ``python -m repro``."""

import json

import pytest

from repro.__main__ import main
from repro.logs import LISTING_6


@pytest.fixture
def log_file(tmp_path):
    path = tmp_path / "log.sql"
    path.write_text("\n".join(LISTING_6) + "\n", encoding="utf-8")
    return str(path)


def _json_out(capsys):
    return json.loads(capsys.readouterr().out)


class TestMineJson:
    def test_dumps_generation_result_stats(self, log_file, capsys):
        assert main(["mine", log_file, "--json"]) == 0
        payload = _json_out(capsys)
        assert payload["run"]["n_queries"] == 3
        assert payload["run"]["n_pairs_compared"] == 2
        assert [s["name"] for s in payload["run"]["stages"]] == [
            "parse", "mine", "map", "merge"
        ]
        widgets = {w["type"] for w in payload["interface"]["widgets"]}
        assert widgets == {"toggle_button", "slider"}

    def test_segment_mode_emits_one_payload_per_analysis(self, tmp_path, capsys):
        statements = [
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 2",
            "SELECT dest, SUM(delay) FROM ontime GROUP BY dest",
            "SELECT dest, AVG(delay) FROM ontime GROUP BY dest",
        ]
        path = tmp_path / "mixed.sql"
        path.write_text("\n".join(statements) + "\n", encoding="utf-8")
        assert main(["mine", str(path), "--json", "--segment"]) == 0
        payload = _json_out(capsys)
        assert isinstance(payload, list) and len(payload) == 2
        assert payload[0]["provenance"]["segment"] == 0

    def test_segment_shape_is_a_list_even_for_one_analysis(self, log_file, capsys):
        """Deterministic schema: --segment always emits a list."""
        assert main(["mine", log_file, "--json", "--segment"]) == 0
        payload = _json_out(capsys)
        assert isinstance(payload, list) and len(payload) == 1

    def test_plain_mode_unchanged(self, log_file, capsys):
        assert main(["mine", log_file]) == 0
        out = capsys.readouterr().out
        assert "Interface:" in out and "{" not in out.split("\n")[0]


class TestRecallJson:
    def test_recall_block_present(self, log_file, capsys):
        assert main(["recall", log_file, "--json", "--split", "0.67"]) == 0
        payload = _json_out(capsys)
        assert payload["recall"]["n_training"] == 2
        assert payload["recall"]["n_holdout"] == 1
        assert 0.0 <= payload["recall"]["recall"] <= 1.0


class TestCheckJson:
    def test_verdict_as_json(self, log_file, capsys):
        query = LISTING_6[0]
        assert main(["check", log_file, "--json", query]) == 0
        payload = _json_out(capsys)
        assert payload == {"query": query, "expressible": True}


class TestServeJson:
    def test_serves_a_multiclient_jsonl_log(self, tmp_path, capsys):
        rows = [
            {"sql": f"SELECT a FROM t WHERE x = {i}", "client": "alice", "sequence": i}
            for i in range(4)
        ] + [
            {"sql": f"SELECT b FROM u WHERE y = {i}", "client": "bob", "sequence": i}
            for i in range(3)
        ]
        path = tmp_path / "multi.jsonl"
        path.write_text(
            "\n".join(json.dumps(row) for row in rows) + "\n", encoding="utf-8"
        )
        assert main(["serve", str(path), "--pool-size", "2",
                     "--queue-depth", "4", "--batch-size", "2", "--json"]) == 0
        payload = _json_out(capsys)
        assert payload["pool"]["pool_size"] == 2
        assert payload["pool"]["n_clients"] == 2
        assert payload["clients"]["alice"]["n_queries"] == 4
        assert payload["clients"]["bob"]["n_queries"] == 3
        assert payload["clients"]["alice"]["n_widgets"] >= 1

    def test_plain_text_log_is_one_client(self, log_file, capsys):
        assert main(["serve", log_file, "--pool-size", "1", "--json"]) == 0
        payload = _json_out(capsys)
        assert payload["pool"]["n_clients"] == 1

    def test_rejects_bad_pool_arguments(self, log_file, capsys):
        assert main(["serve", log_file, "--pool-size", "0"]) == 2
        assert "pool_size" in capsys.readouterr().err
        assert main(["serve", log_file, "--batch-size", "0"]) == 2
        assert "batch-size" in capsys.readouterr().err


class TestCacheCli:
    def test_stats_prune_clear_round_trip(self, log_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(["mine", log_file, "--cache-dir", cache_dir, "--json"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = _json_out(capsys)
        assert stats["n_keys"] == 1
        assert stats["n_graphs"] == 1
        assert stats["n_widget_sets"] == 1
        assert stats["total_bytes"] > 0

        assert main(["cache", "prune", "--cache-dir", cache_dir,
                     "--max-entries", "0", "--json"]) == 0
        pruned = _json_out(capsys)
        assert pruned["removed"] == 1
        assert pruned["n_keys"] == 0

    def test_prune_requires_a_cap_when_there_is_work(self, log_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(["mine", log_file, "--cache-dir", cache_dir, "--json"]) == 0
        capsys.readouterr()
        assert main(["cache", "prune", "--cache-dir", cache_dir]) == 2
        assert "max-bytes" in capsys.readouterr().err

    def test_stats_on_empty_store_dir_exits_cleanly(self, tmp_path, capsys):
        """Regression: an existing-but-empty store directory is a valid,
        empty store — scripted maintenance must get code 0 and zeros."""
        store = tmp_path / "store"
        store.mkdir()
        assert main(["cache", "stats", "--cache-dir", str(store), "--json"]) == 0
        stats = _json_out(capsys)
        assert stats["n_keys"] == 0
        assert stats["n_graphs"] == 0
        assert stats["n_widget_sets"] == 0
        assert stats["n_proof_sets"] == 0
        assert stats["total_bytes"] == 0

    def test_prune_on_empty_store_dir_exits_cleanly(self, tmp_path, capsys):
        """Regression: pruning an empty store is a no-op report, with or
        without caps — not a usage error."""
        store = tmp_path / "store"
        store.mkdir()
        assert main(["cache", "prune", "--cache-dir", str(store)]) == 0
        assert "nothing to prune" in capsys.readouterr().out
        assert main(["cache", "prune", "--cache-dir", str(store), "--json"]) == 0
        payload = _json_out(capsys)
        assert payload["removed"] == 0 and payload["n_keys"] == 0
        assert main(["cache", "prune", "--cache-dir", str(store),
                     "--max-entries", "3", "--json"]) == 0
        assert _json_out(capsys)["removed"] == 0

    def test_clear_empties_the_store(self, log_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(["mine", log_file, "--cache-dir", cache_dir, "--json"]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir, "--json"]) == 0
        assert _json_out(capsys)["n_keys"] == 0

    def test_migrate_round_trip_via_cli(self, log_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(["mine", log_file, "--cache-dir", cache_dir, "--json"]) == 0
        capsys.readouterr()
        assert main(["cache", "migrate", "--cache-dir", cache_dir,
                     "--to", "json", "--json"]) == 0
        payload = _json_out(capsys)
        assert payload["format"] == "json"
        assert payload["migrated_keys"] == 1
        assert payload["orphans_dropped"] == 0
        assert main(["cache", "migrate", "--cache-dir", cache_dir,
                     "--to", "packed", "--json"]) == 0
        payload = _json_out(capsys)
        assert payload["format"] == "packed"
        assert payload["migrated_keys"] == 1
        # the migrated store still serves a full hit
        assert main(["mine", log_file, "--cache-dir", cache_dir, "--json"]) == 0
        stages = {s["name"]: s["stats"] for s in _json_out(capsys)["run"]["stages"]}
        assert stages["cache"]["widgets_hit"] is True

    def test_migrate_to_current_format_reports_zero(
        self, log_file, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "store")
        assert main(["mine", log_file, "--cache-dir", cache_dir, "--json"]) == 0
        capsys.readouterr()
        assert main(["cache", "migrate", "--cache-dir", cache_dir,
                     "--to", "packed"]) == 0
        assert "migrated 0 key(s)" in capsys.readouterr().out

    def test_stats_text_reports_segment_accounting(
        self, log_file, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "store")
        assert main(["mine", log_file, "--cache-dir", cache_dir, "--json"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "[packed]" in out
        assert "live" in out
        assert "compaction debt" in out

    def test_full_hit_visible_in_json(self, log_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(["mine", log_file, "--cache-dir", cache_dir, "--json"]) == 0
        capsys.readouterr()
        assert main(["mine", log_file, "--cache-dir", cache_dir, "--json"]) == 0
        stages = {s["name"]: s["stats"] for s in _json_out(capsys)["run"]["stages"]}
        assert stages["cache"]["widgets_hit"] is True
        assert stages["mine"]["skipped"] is True
        assert stages["map"]["skipped"] is True
        assert stages["merge"]["skipped"] is True

    def test_missing_cache_dir_is_an_error(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["cache", "stats", "--cache-dir", str(missing)]) == 2
        assert "does not exist" in capsys.readouterr().err
        assert not missing.exists()  # maintenance must not create it
