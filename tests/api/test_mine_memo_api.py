"""API surface of the mining memoisation: stage counters and parse de-dup."""

from repro.api import InterfaceSession, generate
from repro.core.options import PipelineOptions

TEMPLATE_LOG = [
    "SELECT a FROM t WHERE x = 1",
    "SELECT a FROM t WHERE x = 2",
    "SELECT a FROM t WHERE x = 5",
    "SELECT a FROM t WHERE x = 9",
    "SELECT a FROM t WHERE x = 13",
]


class TestMineStageCounters:
    def test_generate_reports_memoisation_split(self):
        result = generate(TEMPLATE_LOG, options=PipelineOptions(window=2))
        stats = result.run.stage("mine").stats
        # 4 adjacent pairs of one template: first aligns, the rest replay
        assert stats["n_alignments_full"] == 1
        assert stats["n_alignments_memoised"] == 3
        assert (
            stats["n_alignments_full"] + stats["n_alignments_memoised"]
            == stats["n_pairs_compared"]
        )

    def test_session_accumulates_counters(self):
        session = InterfaceSession(options=PipelineOptions(window=2))
        session.append_sql(TEMPLATE_LOG[:3])
        result = session.append_sql(TEMPLATE_LOG[3:])
        assert session.n_alignments_full == 1
        assert session.n_alignments_memoised == 3
        append_stats = result.run.stage("mine").stats
        # the second append's two pairs both replay the first append's plan
        assert append_stats["n_alignments_memoised"] == 2
        assert append_stats["n_alignments_full"] == 0

    def test_memoised_equals_one_shot(self):
        session = InterfaceSession(options=PipelineOptions(window=2))
        for statement in TEMPLATE_LOG:
            session.append_sql([statement])
        one_shot = generate(TEMPLATE_LOG, options=PipelineOptions(window=2))
        assert (
            session.interface.widget_summary()
            == one_shot.interface.widget_summary()
        )


class TestParseDedup:
    def test_repeated_statements_parse_once(self):
        log = ["SELECT a FROM t WHERE x = 1"] * 4 + [
            "SELECT a FROM t WHERE x = 2"
        ]
        result = generate(log)
        stats = result.run.stage("parse").stats
        assert stats["n_parse_hits"] == 3
        assert stats["n_parsed"] == 5
        assert stats["n_queries"] == 5

    def test_hits_share_the_ast_object(self):
        log = ["SELECT a FROM t WHERE x = 1"] * 3
        result = generate(log)
        assert result.provenance["n_queries"] == 3

    def test_ast_input_reports_zero_hits(self):
        from repro import parse_sql

        result = generate([parse_sql(s) for s in TEMPLATE_LOG])
        assert result.run.stage("parse").stats["n_parse_hits"] == 0

    def test_dedup_changes_no_output(self):
        log = TEMPLATE_LOG + TEMPLATE_LOG  # every statement repeats
        repeated = generate(log)
        assert repeated.run.stage("parse").stats["n_parse_hits"] == len(
            TEMPLATE_LOG
        )
        unique = generate(TEMPLATE_LOG)
        # the repeated half adds identical queries: same widget shapes
        assert {
            (w[0], w[1]) for w in repeated.interface.widget_summary()
        } == {(w[0], w[1]) for w in unique.interface.widget_summary()}

    def test_session_append_sql_dedups(self):
        session = InterfaceSession()
        session.append_sql(["SELECT a FROM t WHERE x = 1"] * 3)
        queries = session.queries
        assert queries[0] is queries[1] is queries[2]
